#include "hpnn/model_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/error.hpp"

namespace hpnn::obf {
namespace {

models::ModelConfig small_cfg() {
  models::ModelConfig cfg;
  cfg.in_channels = 1;
  cfg.image_size = 16;
  cfg.num_classes = 10;
  cfg.init_seed = 9;
  return cfg;
}

LockedModel make_model(const HpnnKey& key, const Scheduler& sched) {
  return LockedModel(models::Architecture::kCnn1, small_cfg(), key, sched);
}

TEST(ModelIoTest, PublishReadRoundTrip) {
  Rng rng(1);
  const HpnnKey key = HpnnKey::random(rng);
  Scheduler sched(3);
  LockedModel model = make_model(key, sched);

  std::stringstream ss;
  publish_model(ss, model);
  const PublishedModel artifact = read_published_model(ss);

  EXPECT_EQ(artifact.arch, models::Architecture::kCnn1);
  EXPECT_EQ(artifact.in_channels, 1);
  EXPECT_EQ(artifact.image_size, 16);
  EXPECT_EQ(artifact.num_classes, 10);
  EXPECT_DOUBLE_EQ(artifact.width_mult, 1.0);
  EXPECT_FALSE(artifact.parameters.empty());
}

TEST(ModelIoTest, PublishedWeightsMatchModel) {
  Rng rng(2);
  const HpnnKey key = HpnnKey::random(rng);
  Scheduler sched(5);
  LockedModel model = make_model(key, sched);
  std::stringstream ss;
  publish_model(ss, model);
  const PublishedModel artifact = read_published_model(ss);
  const auto params = nn::parameters_of(model.network());
  ASSERT_EQ(params.size(), artifact.parameters.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    EXPECT_EQ(params[i]->name, artifact.parameters[i].name);
    EXPECT_TRUE(
        params[i]->value.allclose(artifact.parameters[i].value, 0.0f, 0.0f));
  }
}

TEST(ModelIoTest, ArtifactContainsNoKeyMaterial) {
  Rng rng(3);
  const HpnnKey key = HpnnKey::random(rng);
  Scheduler sched(7);
  LockedModel model = make_model(key, sched);
  std::stringstream ss;
  publish_model(ss, model);
  const std::string payload = ss.str();
  // Neither the key hex nor any 32-byte key block appears in the artifact.
  EXPECT_EQ(payload.find(key.to_hex()), std::string::npos);
}

TEST(ModelIoTest, InstantiateLockedRecoversFunction) {
  Rng rng(4);
  const HpnnKey key = HpnnKey::random(rng);
  Scheduler sched(9);
  LockedModel model = make_model(key, sched);
  std::stringstream ss;
  publish_model(ss, model);
  const PublishedModel artifact = read_published_model(ss);

  auto restored = instantiate_locked(artifact, key, sched);
  const Tensor x = Tensor::normal(Shape{3, 1, 16, 16}, rng);
  EXPECT_TRUE(model.network().forward(x).allclose(
      restored->network().forward(x), 0.0f, 0.0f));
}

TEST(ModelIoTest, InstantiateBaselineDiffersFromLocked) {
  Rng rng(5);
  const HpnnKey key = HpnnKey::random(rng);
  Scheduler sched(11);
  LockedModel model = make_model(key, sched);
  std::stringstream ss;
  publish_model(ss, model);
  const PublishedModel artifact = read_published_model(ss);

  auto baseline = instantiate_baseline(artifact);
  const Tensor x = Tensor::normal(Shape{3, 1, 16, 16}, rng);
  EXPECT_FALSE(model.network().forward(x).allclose(baseline->forward(x),
                                                   1e-3f, 1e-3f));
}

TEST(ModelIoTest, WrongKeyInstantiationDiffers) {
  Rng rng(6);
  const HpnnKey key = HpnnKey::random(rng);
  const HpnnKey wrong = HpnnKey::random(rng);
  Scheduler sched(13);
  LockedModel model = make_model(key, sched);
  std::stringstream ss;
  publish_model(ss, model);
  const PublishedModel artifact = read_published_model(ss);
  auto restored = instantiate_locked(artifact, wrong, sched);
  const Tensor x = Tensor::normal(Shape{2, 1, 16, 16}, rng);
  EXPECT_FALSE(model.network().forward(x).allclose(
      restored->network().forward(x), 1e-3f, 1e-3f));
}

TEST(ModelIoTest, BadMagicThrows) {
  std::stringstream ss("garbage data that is not a model");
  EXPECT_THROW(read_published_model(ss), SerializationError);
}

TEST(ModelIoTest, TruncatedArtifactThrows) {
  Rng rng(7);
  const HpnnKey key = HpnnKey::random(rng);
  Scheduler sched(15);
  LockedModel model = make_model(key, sched);
  std::stringstream ss;
  publish_model(ss, model);
  std::string payload = ss.str();
  payload.resize(payload.size() / 2);
  std::stringstream truncated(payload);
  EXPECT_THROW(read_published_model(truncated), SerializationError);
}

TEST(ModelIoTest, TamperedPayloadFailsIntegrityCheck) {
  Rng rng(8);
  const HpnnKey key = HpnnKey::random(rng);
  Scheduler sched(17);
  LockedModel model = make_model(key, sched);
  std::stringstream ss;
  publish_model(ss, model);
  std::string payload = ss.str();
  // Flip one weight byte deep inside the payload: the SHA-256 integrity
  // trailer must catch it even though the structure still parses.
  payload[payload.size() / 2] ^= 0x01;
  std::stringstream corrupt(payload);
  EXPECT_THROW(read_published_model(corrupt), SerializationError);
}

TEST(ModelIoTest, TruncatedDigestThrows) {
  Rng rng(18);
  const HpnnKey key = HpnnKey::random(rng);
  Scheduler sched(27);
  LockedModel model = make_model(key, sched);
  std::stringstream ss;
  publish_model(ss, model);
  std::string payload = ss.str();
  payload.resize(payload.size() - 16);  // cut into the digest
  std::stringstream corrupt(payload);
  EXPECT_THROW(read_published_model(corrupt), SerializationError);
}

TEST(ModelIoTest, LoadWeightsRejectsWrongArchitecture) {
  Rng rng(9);
  const HpnnKey key = HpnnKey::random(rng);
  Scheduler sched(19);
  LockedModel model = make_model(key, sched);
  std::stringstream ss;
  publish_model(ss, model);
  const PublishedModel artifact = read_published_model(ss);

  models::ModelConfig cfg;
  cfg.in_channels = 3;
  cfg.image_size = 16;
  cfg.init_seed = 1;
  cfg.activation = models::plain_relu_factory();
  auto other = models::build(models::Architecture::kCnn3, cfg);
  EXPECT_THROW(load_weights(artifact, *other), SerializationError);
}

TEST(ModelIoTest, FileRoundTrip) {
  Rng rng(10);
  const HpnnKey key = HpnnKey::random(rng);
  Scheduler sched(21);
  LockedModel model = make_model(key, sched);
  const std::string path = ::testing::TempDir() + "/hpnn_model.bin";
  publish_model_file(path, model);
  const PublishedModel artifact = read_published_model_file(path);
  EXPECT_EQ(artifact.arch, models::Architecture::kCnn1);
  EXPECT_THROW(read_published_model_file("/nonexistent/path/x.bin"),
               SerializationError);
}

}  // namespace
}  // namespace hpnn::obf
