#include <gtest/gtest.h>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "tensor/ops.hpp"

namespace hpnn::ops {
namespace {

/// Naive triple-loop reference.
Tensor naive_matmul(const Tensor& a, const Tensor& b, bool ta, bool tb) {
  const std::int64_t m = ta ? a.dim(1) : a.dim(0);
  const std::int64_t k = ta ? a.dim(0) : a.dim(1);
  const std::int64_t n = tb ? b.dim(0) : b.dim(1);
  Tensor c(Shape{m, n});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        const float av = ta ? a.at(p, i) : a.at(i, p);
        const float bv = tb ? b.at(j, p) : b.at(p, j);
        s += static_cast<double>(av) * bv;
      }
      c.at(i, j) = static_cast<float>(s);
    }
  }
  return c;
}

struct GemmCase {
  std::int64_t m, k, n;
  Trans ta, tb;
};

class GemmParamTest : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmParamTest, MatchesNaiveReference) {
  const auto& p = GetParam();
  Rng rng(11 + p.m * 131 + p.k * 17 + p.n);
  const Tensor a = Tensor::normal(
      p.ta == Trans::kNo ? Shape{p.m, p.k} : Shape{p.k, p.m}, rng);
  const Tensor b = Tensor::normal(
      p.tb == Trans::kNo ? Shape{p.k, p.n} : Shape{p.n, p.k}, rng);
  const Tensor c = matmul(a, b, p.ta, p.tb);
  const Tensor ref =
      naive_matmul(a, b, p.ta == Trans::kYes, p.tb == Trans::kYes);
  EXPECT_TRUE(c.allclose(ref, 1e-4f, 1e-4f))
      << "m=" << p.m << " k=" << p.k << " n=" << p.n;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmParamTest,
    ::testing::Values(
        GemmCase{1, 1, 1, Trans::kNo, Trans::kNo},
        GemmCase{3, 5, 7, Trans::kNo, Trans::kNo},
        GemmCase{3, 5, 7, Trans::kYes, Trans::kNo},
        GemmCase{3, 5, 7, Trans::kNo, Trans::kYes},
        GemmCase{3, 5, 7, Trans::kYes, Trans::kYes},
        GemmCase{64, 64, 64, Trans::kNo, Trans::kNo},
        GemmCase{65, 63, 130, Trans::kNo, Trans::kNo},  // crosses blocks
        GemmCase{128, 1, 128, Trans::kNo, Trans::kNo},
        GemmCase{1, 200, 1, Trans::kYes, Trans::kYes}));

TEST(GemmTest, AlphaBetaSemantics) {
  Rng rng(3);
  const Tensor a = Tensor::normal(Shape{4, 5}, rng);
  const Tensor b = Tensor::normal(Shape{5, 6}, rng);
  Tensor c(Shape{4, 6}, 1.0f);
  gemm(a, Trans::kNo, b, Trans::kNo, c, 2.0f, 3.0f);
  Tensor expected = naive_matmul(a, b, false, false) * 2.0f;
  expected.add_(Tensor(Shape{4, 6}, 3.0f));
  EXPECT_TRUE(c.allclose(expected, 1e-4f, 1e-4f));
}

TEST(GemmTest, BetaOneAccumulates) {
  Rng rng(4);
  const Tensor a = Tensor::normal(Shape{2, 3}, rng);
  const Tensor b = Tensor::normal(Shape{3, 2}, rng);
  Tensor c(Shape{2, 2});
  gemm(a, Trans::kNo, b, Trans::kNo, c, 1.0f, 0.0f);
  const Tensor once = c;
  gemm(a, Trans::kNo, b, Trans::kNo, c, 1.0f, 1.0f);
  EXPECT_TRUE(c.allclose(once * 2.0f, 1e-5f, 1e-5f));
}

TEST(GemmTest, DimensionMismatchThrows) {
  Tensor a(Shape{2, 3});
  Tensor b(Shape{4, 5});
  Tensor c(Shape{2, 5});
  EXPECT_THROW(gemm(a, Trans::kNo, b, Trans::kNo, c), InvariantError);
}

TEST(GemmTest, OutputShapeMismatchThrows) {
  Tensor a(Shape{2, 3});
  Tensor b(Shape{3, 5});
  Tensor c(Shape{2, 4});
  EXPECT_THROW(gemm(a, Trans::kNo, b, Trans::kNo, c), InvariantError);
}

TEST(GemmTest, RankCheck) {
  Tensor a(Shape{2, 3, 1});
  Tensor b(Shape{3, 5});
  Tensor c(Shape{2, 5});
  EXPECT_THROW(gemm(a, Trans::kNo, b, Trans::kNo, c), InvariantError);
}

}  // namespace
}  // namespace hpnn::ops
