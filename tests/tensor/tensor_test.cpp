#include "tensor/tensor.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace hpnn {
namespace {

TEST(TensorTest, ZeroInitialized) {
  Tensor t(Shape{2, 3});
  EXPECT_EQ(t.numel(), 6);
  for (const auto v : t.span()) {
    EXPECT_EQ(v, 0.0f);
  }
}

TEST(TensorTest, FillValueConstructor) {
  Tensor t(Shape{4}, 2.5f);
  for (const auto v : t.span()) {
    EXPECT_EQ(v, 2.5f);
  }
}

TEST(TensorTest, AdoptValuesChecksCount) {
  EXPECT_NO_THROW(Tensor(Shape{2, 2}, std::vector<float>{1, 2, 3, 4}));
  EXPECT_THROW(Tensor(Shape{2, 2}, std::vector<float>{1, 2, 3}),
               InvariantError);
}

TEST(TensorTest, FlatAccessBounds) {
  Tensor t(Shape{3});
  t.at(2) = 7.0f;
  EXPECT_EQ(t.at(2), 7.0f);
  EXPECT_THROW(t.at(3), InvariantError);
  EXPECT_THROW(t.at(-1), InvariantError);
}

TEST(TensorTest, TwoDAccess) {
  Tensor t(Shape{2, 3});
  t.at(1, 2) = 9.0f;
  EXPECT_EQ(t.at(5), 9.0f);
  EXPECT_THROW(t.at(2, 0), InvariantError);
  Tensor r1(Shape{6});
  EXPECT_THROW(r1.at(0, 0), InvariantError);  // wrong rank
}

TEST(TensorTest, FourDAccessNCHW) {
  Tensor t(Shape{2, 3, 4, 5});
  t.at(1, 2, 3, 4) = 1.5f;
  EXPECT_EQ(t.at(t.numel() - 1), 1.5f);
  EXPECT_THROW(t.at(2, 0, 0, 0), InvariantError);
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor t = Tensor::arange(Shape{2, 6});
  const Tensor r = t.reshaped(Shape{3, 4});
  EXPECT_EQ(r.shape(), Shape({3, 4}));
  EXPECT_EQ(r.at(11), 11.0f);
  EXPECT_THROW(t.reshaped(Shape{5}), InvariantError);
}

TEST(TensorTest, InPlaceArithmetic) {
  Tensor a(Shape{3}, 1.0f);
  Tensor b(Shape{3}, 2.0f);
  a.add_(b);
  EXPECT_EQ(a.at(0), 3.0f);
  a.sub_(b);
  EXPECT_EQ(a.at(1), 1.0f);
  a.mul_(b);
  EXPECT_EQ(a.at(2), 2.0f);
  a.scale_(0.5f);
  EXPECT_EQ(a.at(0), 1.0f);
  a.axpy_(3.0f, b);
  EXPECT_EQ(a.at(0), 7.0f);
}

TEST(TensorTest, ShapeMismatchThrows) {
  Tensor a(Shape{3});
  Tensor b(Shape{4});
  EXPECT_THROW(a.add_(b), InvariantError);
  EXPECT_THROW(a.mul_(b), InvariantError);
  EXPECT_THROW(a.axpy_(1.0f, b), InvariantError);
}

TEST(TensorTest, OutOfPlaceOperators) {
  Tensor a(Shape{2}, 3.0f);
  Tensor b(Shape{2}, 2.0f);
  EXPECT_EQ((a + b).at(0), 5.0f);
  EXPECT_EQ((a - b).at(0), 1.0f);
  EXPECT_EQ((a * b).at(0), 6.0f);
  EXPECT_EQ((a * 2.0f).at(0), 6.0f);
  EXPECT_EQ((2.0f * a).at(0), 6.0f);
  EXPECT_EQ((-a).at(0), -3.0f);
}

TEST(TensorTest, Reductions) {
  Tensor t(Shape{4}, std::vector<float>{1.0f, -2.0f, 3.0f, 2.0f});
  EXPECT_FLOAT_EQ(t.sum(), 4.0f);
  EXPECT_FLOAT_EQ(t.mean(), 1.0f);
  EXPECT_EQ(t.min(), -2.0f);
  EXPECT_EQ(t.max(), 3.0f);
  EXPECT_EQ(t.argmax(), 2);
  EXPECT_FLOAT_EQ(t.squared_norm(), 1 + 4 + 9 + 4);
}

TEST(TensorTest, ArgmaxFirstOnTies) {
  Tensor t(Shape{3}, std::vector<float>{5.0f, 5.0f, 1.0f});
  EXPECT_EQ(t.argmax(), 0);
}

TEST(TensorTest, AllClose) {
  Tensor a(Shape{2}, std::vector<float>{1.0f, 2.0f});
  Tensor b(Shape{2}, std::vector<float>{1.0f + 1e-7f, 2.0f});
  EXPECT_TRUE(a.allclose(b));
  Tensor c(Shape{2}, std::vector<float>{1.1f, 2.0f});
  EXPECT_FALSE(a.allclose(c));
  Tensor d(Shape{2, 1});
  EXPECT_FALSE(a.allclose(d));  // different shape
}

TEST(TensorTest, RandomFactoriesDeterministic) {
  Rng r1(5);
  Rng r2(5);
  const Tensor a = Tensor::normal(Shape{16}, r1);
  const Tensor b = Tensor::normal(Shape{16}, r2);
  EXPECT_TRUE(a.allclose(b, 0.0f, 0.0f));
  Rng r3(5);
  const Tensor u = Tensor::uniform(Shape{64}, r3, -1.0f, 1.0f);
  EXPECT_GE(u.min(), -1.0f);
  EXPECT_LT(u.max(), 1.0f);
}

TEST(TensorTest, CopyIsDeep) {
  Tensor a(Shape{2}, 1.0f);
  Tensor b = a;
  b.at(0) = 9.0f;
  EXPECT_EQ(a.at(0), 1.0f);
}

}  // namespace
}  // namespace hpnn
