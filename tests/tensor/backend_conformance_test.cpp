// Cross-backend conformance kit (DESIGN §15): every registered
// ComputeBackend must uphold the same contracts, verified here by running
// the identical workload under each supported backend and comparing
// against the scalar reference.
//
// The contracts, in order of strictness:
//   - int8 MMU datapath: bit-identical across ALL backends (32-bit
//     wrap-around accumulation is modular, so evaluation order is free);
//   - locked-ReLU gradient: bit-identical across ALL backends (the ±1
//     lock multiply is exact in every vector width — Theorem 1);
//   - single-rounding elementwise ops (relu, mask, mul, add_scalar):
//     bit-identical across ALL backends;
//   - any fixed backend: bit-identical at any HPNN_THREADS setting;
//   - float GEMM / conv: equal to the scalar reference within documented
//     rounding tolerance (FMA and tile-width reduction order may differ).
//
// Mirrors the LockScheme conformance kit pattern: TEST_P over the runtime
// registry, so an out-of-tree backend registered before main() is swept by
// the same suite.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "core/aligned_buffer.hpp"
#include "core/error.hpp"
#include "core/rng.hpp"
#include "core/threadpool.hpp"
#include "hpnn/owner.hpp"
#include "hw/device.hpp"
#include "tensor/backend.hpp"
#include "tensor/ops.hpp"

namespace hpnn {
namespace {

std::vector<std::string> supported_backends() {
  std::vector<std::string> names;
  for (const auto& name : ops::backend_names()) {
    if (ops::find_backend(name)->supported()) {
      names.push_back(name);
    }
  }
  return names;
}

/// Restores the entering backend and thread count on scope exit, so a
/// failing TEST_P cannot leak its selection into later suites.
class StateRestorer {
 public:
  StateRestorer()
      : backend_(ops::backend().name()), threads_(core::thread_count()) {}
  ~StateRestorer() {
    ops::set_backend(backend_);
    core::set_thread_count(threads_);
  }

 private:
  std::string backend_;
  int threads_;
};

Tensor random_tensor(Shape shape, std::uint64_t seed) {
  Rng rng(seed);
  return Tensor::normal(shape, rng, 0.0f, 1.0f);
}

/// Elementwise comparison with a tolerance scaled to the reduction depth:
/// k float additions accumulate at most ~k ulps of drift between two
/// evaluation orders.
void expect_close(const Tensor& got, const Tensor& want, std::int64_t k,
                  const std::string& what) {
  ASSERT_EQ(got.shape(), want.shape()) << what;
  const float tol =
      1e-5f * static_cast<float>(k > 0 ? k : 1);
  for (std::int64_t i = 0; i < got.numel(); ++i) {
    const float scale = std::max(1.0f, std::abs(want.data()[i]));
    ASSERT_NEAR(got.data()[i], want.data()[i], tol * scale)
        << what << " at flat index " << i;
  }
}

class BackendConformanceTest : public ::testing::TestWithParam<std::string> {
 protected:
  StateRestorer restore_;
};

INSTANTIATE_TEST_SUITE_P(
    Backends, BackendConformanceTest,
    ::testing::ValuesIn(supported_backends()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

// ---- float GEMM: tolerance vs scalar, bit-stability vs threads ---------

TEST_P(BackendConformanceTest, GemmMatchesScalarWithinTolerance) {
  struct Case {
    std::int64_t m, k, n;
  };
  for (const Case& c : {Case{1, 64, 33},    // gemv path
                        Case{7, 33, 19},    // edge tiles everywhere
                        Case{24, 32, 64},   // full tiles for 6x16 and 8x32
                        Case{48, 80, 40}}) {
    const Tensor a = random_tensor(Shape{c.m, c.k}, 11 + c.m);
    const Tensor b = random_tensor(Shape{c.k, c.n}, 23 + c.n);
    ops::set_backend("scalar");
    const Tensor want = ops::matmul(a, b);
    ops::set_backend(GetParam());
    const Tensor got = ops::matmul(a, b);
    expect_close(got, want, c.k, "gemm " + GetParam());
  }
}

TEST_P(BackendConformanceTest, GemmTransposedOperandsMatchScalar) {
  const std::int64_t m = 17, k = 29, n = 35;
  const Tensor at = random_tensor(Shape{k, m}, 31);
  const Tensor bt = random_tensor(Shape{n, k}, 37);
  ops::set_backend("scalar");
  const Tensor want = ops::matmul(at, bt, ops::Trans::kYes, ops::Trans::kYes);
  ops::set_backend(GetParam());
  const Tensor got = ops::matmul(at, bt, ops::Trans::kYes, ops::Trans::kYes);
  expect_close(got, want, k, "gemm^T " + GetParam());
}

TEST_P(BackendConformanceTest, ThreadCountDoesNotChangeGemmBits) {
  ops::set_backend(GetParam());
  const Tensor a = random_tensor(Shape{53, 67}, 41);
  const Tensor b = random_tensor(Shape{67, 71}, 43);
  core::set_thread_count(1);
  const Tensor want = ops::matmul(a, b);
  for (int threads : {2, 3, 8}) {
    core::set_thread_count(threads);
    const Tensor got = ops::matmul(a, b);
    ASSERT_EQ(0, std::memcmp(got.data(), want.data(),
                             sizeof(float) * static_cast<std::size_t>(
                                                 got.numel())))
        << GetParam() << " GEMM bits changed at " << threads << " threads";
  }
}

// ---- elementwise ops ---------------------------------------------------

TEST_P(BackendConformanceTest, SingleRoundingElementwiseOpsBitExact) {
  const core::ComputeBackend& scalar = *ops::find_backend("scalar");
  const core::ComputeBackend& be = *ops::find_backend(GetParam());
  // Lengths straddle every lane-width remainder (8 for AVX2, 16 for
  // AVX-512).
  for (std::int64_t n : {1, 7, 8, 15, 16, 17, 63, 100}) {
    const Tensor x = random_tensor(Shape{n}, 53 + n);
    const Tensor b = random_tensor(Shape{n}, 59 + n);
    Tensor want(Shape{n}), got(Shape{n});

    scalar.relu(x.data(), want.data(), n);
    be.relu(x.data(), got.data(), n);
    ASSERT_EQ(0, std::memcmp(got.data(), want.data(), sizeof(float) * n))
        << "relu n=" << n;

    scalar.mul(x.data(), b.data(), want.data(), n);
    be.mul(x.data(), b.data(), got.data(), n);
    ASSERT_EQ(0, std::memcmp(got.data(), want.data(), sizeof(float) * n))
        << "mul n=" << n;

    std::memcpy(want.data(), b.data(), sizeof(float) * n);
    std::memcpy(got.data(), b.data(), sizeof(float) * n);
    scalar.relu_mask(x.data(), want.data(), n);
    be.relu_mask(x.data(), got.data(), n);
    ASSERT_EQ(0, std::memcmp(got.data(), want.data(), sizeof(float) * n))
        << "relu_mask n=" << n;

    std::memcpy(want.data(), b.data(), sizeof(float) * n);
    std::memcpy(got.data(), b.data(), sizeof(float) * n);
    scalar.add_scalar(0.375f, want.data(), n);
    be.add_scalar(0.375f, got.data(), n);
    ASSERT_EQ(0, std::memcmp(got.data(), want.data(), sizeof(float) * n))
        << "add_scalar n=" << n;
  }
}

TEST_P(BackendConformanceTest, AxpyAndDotWithinTolerance) {
  const core::ComputeBackend& scalar = *ops::find_backend("scalar");
  const core::ComputeBackend& be = *ops::find_backend(GetParam());
  for (std::int64_t n : {1, 17, 100, 1000}) {
    const Tensor x = random_tensor(Shape{n}, 61 + n);
    const Tensor y0 = random_tensor(Shape{n}, 67 + n);
    Tensor want(Shape{n}), got(Shape{n});
    std::memcpy(want.data(), y0.data(), sizeof(float) * n);
    std::memcpy(got.data(), y0.data(), sizeof(float) * n);
    scalar.axpy(0.25f, x.data(), want.data(), n);
    be.axpy(0.25f, x.data(), got.data(), n);
    for (std::int64_t i = 0; i < n; ++i) {
      ASSERT_NEAR(got.data()[i], want.data()[i],
                  1e-5f * std::max(1.0f, std::abs(want.data()[i])))
          << "axpy n=" << n << " i=" << i;
    }
    const float dw = scalar.dot(x.data(), y0.data(), n);
    const float dg = be.dot(x.data(), y0.data(), n);
    ASSERT_NEAR(dg, dw, 1e-5f * static_cast<float>(n) *
                            std::max(1.0f, std::abs(dw)))
        << "dot n=" << n;
  }
}

TEST_P(BackendConformanceTest, LockedReluGradBitExact) {
  // Theorem-1 exactness: the lock factor is ±1, so g * lock is exact in
  // every vector width and the gradient must be bit-identical across
  // backends — not merely close.
  const core::ComputeBackend& scalar = *ops::find_backend("scalar");
  const core::ComputeBackend& be = *ops::find_backend(GetParam());
  for (std::int64_t n : {1, 15, 16, 33, 257}) {
    const Tensor g = random_tensor(Shape{n}, 71 + n);
    const Tensor z = random_tensor(Shape{n}, 73 + n);
    Tensor lock(Shape{n});
    Rng rng(79 + static_cast<std::uint64_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
      lock.data()[i] = (rng() & 1) ? 1.0f : -1.0f;
    }
    Tensor want(Shape{n}), got(Shape{n});
    scalar.lock_relu_grad(g.data(), z.data(), lock.data(), want.data(), n);
    be.lock_relu_grad(g.data(), z.data(), lock.data(), got.data(), n);
    ASSERT_EQ(0, std::memcmp(got.data(), want.data(), sizeof(float) * n))
        << "lock_relu_grad n=" << n;
  }
}

// ---- int8 MMU datapath: bit-identical across all backends --------------

TEST_P(BackendConformanceTest, MatmulI8BitIdenticalToScalar) {
  const core::ComputeBackend& scalar = *ops::find_backend("scalar");
  const core::ComputeBackend& be = *ops::find_backend(GetParam());
  struct Case {
    std::int64_t m, k, n;
  };
  // Odd n exercises the SIMD stripe remainder; k=1 and the INT8_MIN-heavy
  // fill exercise the VNNI bias-correction identity at its extremes.
  for (const Case& c : {Case{1, 1, 1}, Case{3, 7, 5}, Case{5, 37, 19},
                        Case{4, 64, 32}, Case{2, 9, 33}, Case{6, 128, 65}}) {
    const std::int64_t asz = c.m * c.k, wsz = c.k * c.n, osz = c.m * c.n;
    std::vector<std::int8_t> a(asz), w(wsz);
    std::vector<std::uint8_t> negate(osz);
    Rng rng(83 + static_cast<std::uint64_t>(c.m * 1000 + c.n));
    for (auto& v : a) {
      v = static_cast<std::int8_t>(rng() & 0xFF);  // full range incl. -128
    }
    for (auto& v : w) {
      v = static_cast<std::int8_t>(rng() & 0xFF);
    }
    for (auto& v : negate) {
      v = static_cast<std::uint8_t>(rng() & 1);
    }
    std::vector<std::int32_t> want(osz), got(osz);

    scalar.matmul_i8(a.data(), c.m, c.k, w.data(), c.n, nullptr, want.data());
    be.matmul_i8(a.data(), c.m, c.k, w.data(), c.n, nullptr, got.data());
    ASSERT_EQ(0,
              std::memcmp(got.data(), want.data(), sizeof(std::int32_t) * osz))
        << "matmul_i8 (unlocked) " << c.m << "x" << c.k << "x" << c.n;

    scalar.matmul_i8(a.data(), c.m, c.k, w.data(), c.n, negate.data(),
                     want.data());
    be.matmul_i8(a.data(), c.m, c.k, w.data(), c.n, negate.data(),
                 got.data());
    ASSERT_EQ(0,
              std::memcmp(got.data(), want.data(), sizeof(std::int32_t) * osz))
        << "matmul_i8 (keyed negation) " << c.m << "x" << c.k << "x" << c.n;
  }
}

TEST_P(BackendConformanceTest, MatmulI8SaturatedOperandsBitIdentical) {
  // All-(-128) activations against all-(+127) weights maximize the VNNI
  // unsigned-bias correction: any off-by-one in the 128·colsum term shows
  // up immediately.
  const core::ComputeBackend& scalar = *ops::find_backend("scalar");
  const core::ComputeBackend& be = *ops::find_backend(GetParam());
  const std::int64_t m = 2, k = 300, n = 17;
  std::vector<std::int8_t> a(m * k, -128), w(k * n, 127);
  std::vector<std::int32_t> want(m * n), got(m * n);
  scalar.matmul_i8(a.data(), m, k, w.data(), n, nullptr, want.data());
  be.matmul_i8(a.data(), m, k, w.data(), n, nullptr, got.data());
  EXPECT_EQ(0, std::memcmp(got.data(), want.data(),
                           sizeof(std::int32_t) * static_cast<std::size_t>(
                                                      m * n)));
}

// ---- convolution through the shared blocking ---------------------------

TEST_P(BackendConformanceTest, ConvForwardBackwardMatchScalar) {
  ops::Conv2dGeometry g;
  g.in_channels = 3;
  g.in_h = g.in_w = 9;
  g.kernel = 3;
  g.stride = 1;
  g.padding = 1;
  const Tensor x = random_tensor(Shape{2, 3, 9, 9}, 89);
  const Tensor weight = random_tensor(Shape{4, 3, 3, 3}, 97);
  const Tensor bias = random_tensor(Shape{4}, 101);
  const Tensor grad_out = random_tensor(Shape{2, 4, 9, 9}, 103);
  const std::int64_t depth = g.in_channels * g.kernel * g.kernel;

  ops::set_backend("scalar");
  const Tensor want_y = ops::conv2d_forward(x, weight, bias, g);
  Tensor want_gw(weight.shape()), want_gb(bias.shape());
  const Tensor want_gx =
      ops::conv2d_backward(x, weight, grad_out, g, want_gw, want_gb);

  ops::set_backend(GetParam());
  const Tensor got_y = ops::conv2d_forward(x, weight, bias, g);
  Tensor got_gw(weight.shape()), got_gb(bias.shape());
  const Tensor got_gx =
      ops::conv2d_backward(x, weight, grad_out, g, got_gw, got_gb);

  expect_close(got_y, want_y, depth, "conv forward");
  expect_close(got_gx, want_gx, depth, "conv grad_x");
  expect_close(got_gw, want_gw, x.shape().dim(0) * g.in_h * g.in_w,
               "conv grad_w");
  expect_close(got_gb, want_gb, grad_out.numel() / 4, "conv grad_b");
}

// ---- end to end: trusted-device int8 inference -------------------------

TEST_P(BackendConformanceTest, DeviceLogitsBitIdenticalToScalar) {
  // The device's MAC layers run entirely on the int8 datapath, and every
  // float step around them (quantize, dequant, pooling, bias) is a
  // single-rounding per-element op — so end-to-end logits must be
  // byte-identical between the scalar reference and any SIMD tier.
  models::ModelConfig cfg;
  cfg.in_channels = 1;
  cfg.image_size = 16;
  cfg.init_seed = 7;
  Rng rng(107);
  const obf::HpnnKey key = obf::HpnnKey::random(rng);
  obf::Scheduler sched(12345);
  obf::LockedModel owner(models::Architecture::kCnn1, cfg, key, sched);
  std::stringstream ss;
  obf::publish_model(ss, owner);
  const obf::PublishedModel artifact = obf::read_published_model(ss);
  const Tensor x = Tensor::normal(Shape{4, 1, 16, 16}, rng, 0.0f, 0.25f);

  ops::set_backend("scalar");
  hw::TrustedDevice scalar_device(key, 12345);
  scalar_device.load_model(artifact);
  const Tensor want = scalar_device.infer(x);

  ops::set_backend(GetParam());
  hw::TrustedDevice device(key, 12345);
  device.load_model(artifact);
  const Tensor got = device.infer(x);

  ASSERT_EQ(got.shape(), want.shape());
  EXPECT_EQ(0, std::memcmp(got.data(), want.data(),
                           sizeof(float) * static_cast<std::size_t>(
                                               got.numel())))
      << "device logits diverged between scalar and " << GetParam();
}

// ---- backend-switch safety (not parameterized) -------------------------

/// The first non-scalar supported backend, or "" when this CPU has none.
std::string first_simd_backend() {
  for (const auto& name : supported_backends()) {
    if (name != "scalar") {
      return name;
    }
  }
  return "";
}

TEST(BackendSwitchTest, PackedPanelsReplayThroughPackingBackend) {
  const std::string simd = first_simd_backend();
  if (simd.empty()) {
    GTEST_SKIP() << "no SIMD backend supported on this CPU";
  }
  StateRestorer restore;
  const Tensor a = random_tensor(Shape{19, 23}, 109);
  const Tensor b = random_tensor(Shape{23, 31}, 113);
  ops::set_backend("scalar");
  const Tensor want = ops::matmul(a, b);

  // Pack under the SIMD backend, then switch the active backend away: the
  // panel must keep replaying through the backend that laid it out.
  ops::set_backend(simd);
  ops::PackedA pa;
  pa.pack(a.data(), false, 19, 23);
  ASSERT_EQ(pa.packed_backend(), ops::find_backend(simd));
  ops::set_backend("scalar");
  EXPECT_FALSE(pa.matches(a.data(), false, 19, 23))
      << "a panel packed by another backend must not match";
  Tensor got(Shape{19, 31});
  ops::gemm_prepacked(pa, b.data(), false, 31, 0.0f, got.data(), 31);
  expect_close(got, want, 23, "prepacked gemm after backend switch");
}

TEST(BackendSwitchTest, AlternatingBackendsPerCallStaysCorrect) {
  const std::string simd = first_simd_backend();
  if (simd.empty()) {
    GTEST_SKIP() << "no SIMD backend supported on this CPU";
  }
  StateRestorer restore;
  // Regression for scratch-arena replay: GEMM scratch retained from one
  // backend's call must never be interpreted as panels by the next
  // backend's call. Alternate every call and check each result.
  const Tensor a = random_tensor(Shape{29, 41}, 127);
  const Tensor b = random_tensor(Shape{41, 37}, 131);
  ops::set_backend("scalar");
  const Tensor want = ops::matmul(a, b);
  for (int i = 0; i < 6; ++i) {
    ops::set_backend(i % 2 == 0 ? simd : "scalar");
    const Tensor got = ops::matmul(a, b);
    expect_close(got, want, 41, "alternating call " + std::to_string(i));
  }
}

TEST(BackendSwitchTest, ScratchArenaDropsRetainedBlocksOnSwitch) {
  const std::string simd = first_simd_backend();
  if (simd.empty()) {
    GTEST_SKIP() << "no SIMD backend supported on this CPU";
  }
  StateRestorer restore;
  ops::set_backend(simd);
  core::ScratchArena& arena = core::ScratchArena::tls();
  {
    core::ScratchArena::Scope scope(arena);
    scope.floats(4096);
  }
  ASSERT_GT(arena.retained_bytes(), 0u);
  ops::set_backend("scalar");
  {
    // The next outermost scope observes the epoch bump and drops every
    // retained block before handing out memory.
    core::ScratchArena::Scope scope(arena);
    EXPECT_EQ(arena.retained_bytes(), 0u);
  }
}

TEST(BackendRegistryTest, FailsClosedOnUnknownName) {
  EXPECT_EQ(ops::find_backend("no-such-backend"), nullptr);
  EXPECT_THROW(ops::set_backend("no-such-backend"), UsageError);
  // A failed switch must leave the previous selection active.
  EXPECT_FALSE(ops::backend().name().empty());
}

TEST(BackendRegistryTest, ScalarAlwaysRegisteredAndSupported) {
  const auto names = ops::backend_names();
  ASSERT_FALSE(names.empty());
  EXPECT_EQ(names.front(), "scalar");
  EXPECT_TRUE(ops::find_backend("scalar")->supported());
  EXPECT_EQ(ops::find_backend("scalar")->priority(), 0);
}

}  // namespace
}  // namespace hpnn
