// Tests for the packed GEMM layer (tensor/gemm_kernel.hpp): transpose
// folding in the pack stage, alpha/beta edge semantics, the scratch
// arena's alignment/reuse contract, prepacked-A replay, and bit-exact
// determinism across thread-pool sizes. The transpose/alpha-beta/edge
// sweeps run as TEST_P over every registered compute backend that this
// CPU supports, so the AVX-512 tier's edge-tile and beta==0-over-NaN
// paths are exercised wherever the hardware allows.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <tuple>
#include <vector>

#include "core/aligned_buffer.hpp"
#include "core/rng.hpp"
#include "core/threadpool.hpp"
#include "tensor/backend.hpp"
#include "tensor/gemm_kernel.hpp"
#include "tensor/ops.hpp"

namespace hpnn::ops {
namespace {

/// Backends this CPU can actually run (registered but unsupported tiers
/// would make set_backend throw).
std::vector<std::string> supported_backends() {
  std::vector<std::string> v;
  for (const auto& name : backend_names()) {
    if (find_backend(name)->supported()) {
      v.push_back(name);
    }
  }
  return v;
}

/// Restores the entry backend on destruction so a parameterized backend
/// switch cannot leak into later tests in this binary.
class BackendRestorer {
 public:
  BackendRestorer() : saved_(backend().name()) {}
  ~BackendRestorer() { set_backend(saved_); }

 private:
  std::string saved_;
};

/// Naive triple-loop reference with a double accumulator.
std::vector<float> reference_gemm(const std::vector<float>& a, bool ta,
                                  const std::vector<float>& b, bool tb,
                                  std::int64_t m, std::int64_t n,
                                  std::int64_t k, float alpha, float beta,
                                  const std::vector<float>& c0) {
  std::vector<float> c = c0;
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        const float av = ta ? a[p * m + i] : a[i * k + p];
        const float bv = tb ? b[j * k + p] : b[p * n + j];
        s += static_cast<double>(av) * bv;
      }
      const float prior = beta == 0.0f ? 0.0f : beta * c[i * n + j];
      c[i * n + j] = alpha * static_cast<float>(s) + prior;
    }
  }
  return c;
}

std::vector<float> random_vec(std::int64_t count, Rng& rng) {
  std::vector<float> v(static_cast<std::size_t>(count));
  for (auto& x : v) {
    x = static_cast<float>(rng.normal());
  }
  return v;
}

void expect_close(const std::vector<float>& got,
                  const std::vector<float>& want, float tol,
                  const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i], want[i], tol) << what << " at flat index " << i;
  }
}

struct KernelCase {
  std::int64_t m, n, k;
  bool ta, tb;
};

class GemmKernelTransposeTest
    : public ::testing::TestWithParam<std::tuple<std::string, KernelCase>> {
 protected:
  BackendRestorer restore_;
};

// Every transpose combination, at sizes that are deliberately not
// multiples of any backend's microkernel tile, on both the small unpacked
// path and the packed-panel path, for every supported backend.
TEST_P(GemmKernelTransposeTest, MatchesReference) {
  set_backend(std::get<0>(GetParam()));
  const KernelCase& p = std::get<1>(GetParam());
  Rng rng(101 + p.m * 7 + p.n * 11 + p.k * 13 + (p.ta ? 1 : 0) +
          (p.tb ? 2 : 0));
  const auto a = random_vec(p.m * p.k, rng);
  const auto b = random_vec(p.k * p.n, rng);
  const auto c0 = random_vec(p.m * p.n, rng);

  std::vector<float> c = c0;
  gemm_raw(a.data(), p.ta, b.data(), p.tb, p.m, p.n, p.k, 1.0f, 1.0f,
           c.data(), p.n);
  const auto want =
      reference_gemm(a, p.ta, b, p.tb, p.m, p.n, p.k, 1.0f, 1.0f, c0);
  const float tol = 1e-3f * static_cast<float>(std::sqrt(p.k));
  expect_close(c, want, tol, "transpose combo");
}

INSTANTIATE_TEST_SUITE_P(
    OddShapes, GemmKernelTransposeTest,
    ::testing::Combine(
        ::testing::ValuesIn(supported_backends()),
        ::testing::Values(
            // Small-volume unpacked path (m*n*k below the packing
            // threshold).
            KernelCase{7, 5, 13, false, false},
            KernelCase{7, 5, 13, false, true},
            KernelCase{7, 5, 13, true, false},
            KernelCase{7, 5, 13, true, true},
            // Packed-panel path, every dimension off-tile.
            KernelCase{17, 31, 23, false, false},
            KernelCase{17, 31, 23, false, true},
            KernelCase{17, 31, 23, true, false},
            KernelCase{17, 31, 23, true, true},
            // Larger, prime-ish shapes.
            KernelCase{67, 101, 45, false, false},
            KernelCase{67, 101, 45, false, true},
            KernelCase{67, 101, 45, true, false},
            KernelCase{67, 101, 45, true, true},
            // Tile multiples of both the 6x16 and 8x32 microtiles
            // (full-tile store path, no edge spill, on every tier).
            KernelCase{24, 32, 24, false, false},
            KernelCase{24, 32, 24, true, true},
            // GEMV row (m == 1) in both B orientations.
            KernelCase{1, 33, 19, false, false},
            KernelCase{1, 33, 19, false, true})),
    [](const auto& info) {
      const auto& c = std::get<1>(info.param);
      return std::get<0>(info.param) + "_m" + std::to_string(c.m) + "n" +
             std::to_string(c.n) + "k" + std::to_string(c.k) +
             (c.ta ? "_ta" : "") + (c.tb ? "_tb" : "");
    });

class GemmKernelBackendEdgeTest
    : public ::testing::TestWithParam<std::string> {
 protected:
  BackendRestorer restore_;
};

// beta == 0 must overwrite C without reading it: NaN garbage in the output
// buffer must not propagate (the reference semantics for an uninitialized
// destination). Both the full-tile vector store and the edge-tile merge
// path are on shapes here, for every tier — including VNNI-class AVX-512.
TEST_P(GemmKernelBackendEdgeTest, BetaZeroOverwritesNaN) {
  set_backend(GetParam());
  struct Case {
    std::int64_t m, n, k;
  };
  // One off-tile shape (edge-tile merge) and one exact multiple of the
  // largest (8x32) tile (full-tile vector stores).
  for (const Case& shape : {Case{19, 21, 17}, Case{24, 64, 16}}) {
    const std::int64_t m = shape.m, n = shape.n, k = shape.k;
    Rng rng(7);
    const auto a = random_vec(m * k, rng);
    const auto b = random_vec(k * n, rng);
    std::vector<float> c(static_cast<std::size_t>(m * n),
                         std::numeric_limits<float>::quiet_NaN());
    gemm_raw(a.data(), false, b.data(), false, m, n, k, 1.0f, 0.0f, c.data(),
             n);
    for (const auto v : c) {
      EXPECT_FALSE(std::isnan(v)) << "m=" << m << " n=" << n;
    }
    const auto want = reference_gemm(
        a, false, b, false, m, n, k, 1.0f, 0.0f,
        std::vector<float>(static_cast<std::size_t>(m * n), 0.0f));
    expect_close(c, want, 1e-3f, "beta=0 NaN overwrite");
  }
}

// Same contract on the degenerate alpha == 0 path: C = beta * C, and with
// beta == 0 the NaNs must still be flushed to exact zeros.
TEST_P(GemmKernelBackendEdgeTest, AlphaZeroScalesC) {
  set_backend(GetParam());
  const std::int64_t m = 9, n = 14, k = 11;
  Rng rng(8);
  const auto a = random_vec(m * k, rng);
  const auto b = random_vec(k * n, rng);
  const auto c0 = random_vec(m * n, rng);

  std::vector<float> c = c0;
  gemm_raw(a.data(), false, b.data(), false, m, n, k, 0.0f, 2.5f, c.data(),
           n);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_FLOAT_EQ(c[i], 2.5f * c0[i]);
  }

  std::vector<float> nan_c(static_cast<std::size_t>(m * n),
                           std::numeric_limits<float>::quiet_NaN());
  gemm_raw(a.data(), false, b.data(), false, m, n, k, 0.0f, 0.0f,
           nan_c.data(), n);
  for (const auto v : nan_c) {
    EXPECT_EQ(v, 0.0f);
  }
}

// The determinism contract: for a fixed backend, results are bit-identical
// at every thread-pool size because chunk boundaries are a pure function
// of the shape and each C element accumulates its full K extent in one
// microkernel call.
TEST_P(GemmKernelBackendEdgeTest, ThreadCountDoesNotChangeBits) {
  set_backend(GetParam());
  const std::int64_t m = 191, n = 163, k = 127;
  Rng rng(31);
  const auto a = random_vec(m * k, rng);
  const auto b = random_vec(k * n, rng);

  core::set_thread_count(1);
  std::vector<float> c1(static_cast<std::size_t>(m * n), 0.0f);
  gemm_raw(a.data(), false, b.data(), true, m, n, k, 1.0f, 0.0f, c1.data(),
           n);

  for (const int threads : {2, 3, 8}) {
    core::set_thread_count(threads);
    std::vector<float> ct(static_cast<std::size_t>(m * n), 0.0f);
    gemm_raw(a.data(), false, b.data(), true, m, n, k, 1.0f, 0.0f, ct.data(),
             n);
    EXPECT_EQ(0,
              std::memcmp(c1.data(), ct.data(), c1.size() * sizeof(float)))
        << "thread count " << threads << " changed the result bits";
  }
  core::set_thread_count(0);  // restore the HPNN_THREADS default
}

INSTANTIATE_TEST_SUITE_P(AllBackends, GemmKernelBackendEdgeTest,
                         ::testing::ValuesIn(supported_backends()),
                         [](const auto& info) { return info.param; });

class GemmKernelAlphaBetaTest
    : public ::testing::TestWithParam<
          std::tuple<std::string, std::pair<float, float>>> {
 protected:
  BackendRestorer restore_;
};

TEST_P(GemmKernelAlphaBetaTest, MatchesReference) {
  set_backend(std::get<0>(GetParam()));
  const auto [alpha, beta] = std::get<1>(GetParam());
  const std::int64_t m = 23, n = 29, k = 31;
  Rng rng(17);
  const auto a = random_vec(m * k, rng);
  const auto b = random_vec(k * n, rng);
  const auto c0 = random_vec(m * n, rng);
  std::vector<float> c = c0;
  gemm_raw(a.data(), false, b.data(), false, m, n, k, alpha, beta, c.data(),
           n);
  const auto want =
      reference_gemm(a, false, b, false, m, n, k, alpha, beta, c0);
  expect_close(c, want, 2e-3f, "alpha/beta combo");
}

INSTANTIATE_TEST_SUITE_P(
    AlphaBeta, GemmKernelAlphaBetaTest,
    ::testing::Combine(::testing::ValuesIn(supported_backends()),
                       ::testing::Values(std::make_pair(1.0f, 0.0f),
                                         std::make_pair(1.0f, 1.0f),
                                         std::make_pair(2.0f, 2.5f),
                                         std::make_pair(-1.5f, 1.0f),
                                         std::make_pair(0.5f, -2.0f))),
    [](const auto& info) {
      auto sanitize = [](float v) {
        std::string s = std::to_string(v);
        for (auto& ch : s) {
          if (ch == '.' || ch == '-') {
            ch = '_';
          }
        }
        return s;
      };
      return std::get<0>(info.param) + "_a" +
             sanitize(std::get<1>(info.param).first) + "_b" +
             sanitize(std::get<1>(info.param).second);
    });

// A packed-once A operand replayed through gemm_prepacked must produce the
// same bits as the pack-every-call entry point: same pack layout, same
// microkernel, same accumulation order.
TEST(GemmKernelPackedATest, PrepackedMatchesGemmRawBitExact) {
  const std::int64_t m = 37, n = 53, k = 29;
  const float alpha = 1.25f;
  Rng rng(23);
  const auto a = random_vec(m * k, rng);
  const auto b = random_vec(k * n, rng);

  std::vector<float> want(static_cast<std::size_t>(m * n), 0.0f);
  gemm_raw(a.data(), false, b.data(), false, m, n, k, alpha, 0.0f,
           want.data(), n);

  PackedA pa;
  EXPECT_TRUE(pa.empty());
  pa.pack(a.data(), false, m, k, alpha);
  EXPECT_FALSE(pa.empty());
  EXPECT_EQ(pa.packed_backend(), &backend());
  EXPECT_TRUE(pa.matches(a.data(), false, m, k, alpha));
  EXPECT_FALSE(pa.matches(a.data(), false, m, k, 1.0f));
  EXPECT_FALSE(pa.matches(b.data(), false, m, k, alpha));

  std::vector<float> got(static_cast<std::size_t>(m * n), 0.0f);
  gemm_prepacked(pa, b.data(), false, n, 0.0f, got.data(), n);
  EXPECT_EQ(0, std::memcmp(got.data(), want.data(),
                           got.size() * sizeof(float)));

  // Transposed-B replay against the transposed-B direct path.
  std::vector<float> bt(static_cast<std::size_t>(k * n));
  for (std::int64_t p = 0; p < k; ++p) {
    for (std::int64_t j = 0; j < n; ++j) {
      bt[j * k + p] = b[p * n + j];
    }
  }
  std::vector<float> got_t(static_cast<std::size_t>(m * n), 0.0f);
  gemm_prepacked(pa, bt.data(), true, n, 0.0f, got_t.data(), n);
  EXPECT_EQ(0, std::memcmp(got_t.data(), want.data(),
                           got_t.size() * sizeof(float)));
}

// ---------------------------------------------------------------- arena

TEST(AlignedBufferTest, AllocationsAreCacheLineAligned) {
  core::AlignedBuffer buf;
  EXPECT_EQ(buf.capacity(), 0u);
  float* p = buf.float_slots(100);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % core::kScratchAlignment,
            0u);
  EXPECT_GE(buf.capacity(), 100 * sizeof(float));

  // Growth discards but realigns; capacity at least doubles.
  const std::size_t old_cap = buf.capacity();
  float* q = buf.float_slots(static_cast<std::size_t>(old_cap));
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(q) % core::kScratchAlignment,
            0u);
  EXPECT_GE(buf.capacity(), 2 * old_cap);
}

TEST(ScratchArenaTest, ScopeAllocationsAlignedAndReusedAcrossScopes) {
  auto& arena = core::ScratchArena::tls();
  float* first = nullptr;
  {
    core::ScratchArena::Scope scope(arena);
    first = scope.floats(513);
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(
        reinterpret_cast<std::uintptr_t>(first) % core::kScratchAlignment,
        0u);
    // A second carve within the same scope must not alias the first.
    float* second = scope.floats(257);
    EXPECT_EQ(
        reinterpret_cast<std::uintptr_t>(second) % core::kScratchAlignment,
        0u);
    EXPECT_GE(second, first + 513);
  }
  // The scope handed its storage back; an equal-size request from a fresh
  // scope reuses the same retained bytes (no fresh allocation).
  const std::size_t retained = arena.retained_bytes();
  {
    core::ScratchArena::Scope scope(arena);
    float* again = scope.floats(513);
    EXPECT_EQ(again, first);
  }
  EXPECT_EQ(arena.retained_bytes(), retained);
}

TEST(ScratchArenaTest, GrowthKeepsLivePointersStableThenCoalesces) {
  auto& arena = core::ScratchArena::tls();
  {
    core::ScratchArena::Scope scope(arena);
    // Force the arena past any single retained block so it has to chain.
    float* a = scope.floats(1 << 14);
    a[0] = 42.0f;
    float* b = scope.floats(1 << 18);
    ASSERT_NE(b, nullptr);
    // The earlier allocation survived the growth un-moved.
    EXPECT_EQ(a[0], 42.0f);
  }
  // Fully rewound: the chain coalesces into a single block big enough for
  // the high-water mark.
  EXPECT_EQ(arena.block_count(), 1u);
  EXPECT_GE(arena.retained_bytes(),
            (std::size_t{1} << 14) * sizeof(float));
}

// Packed-size helpers round up to whole tiles of the given backend's
// microtile geometry.
TEST(GemmKernelDetailTest, PackedSizesRoundUpToTiles) {
  const core::ComputeBackend* scalar = find_backend("scalar");
  ASSERT_NE(scalar, nullptr);
  ASSERT_EQ(scalar->gemm_mr(), 6);
  ASSERT_EQ(scalar->gemm_nr(), 16);
  EXPECT_EQ(detail::packed_a_floats(*scalar, 6, 10), 6 * 10);
  EXPECT_EQ(detail::packed_a_floats(*scalar, 7, 10), 12 * 10);
  EXPECT_EQ(detail::packed_b_floats(*scalar, 10, 16), 16 * 10);
  EXPECT_EQ(detail::packed_b_floats(*scalar, 10, 17), 32 * 10);

  if (const core::ComputeBackend* avx512 = find_backend("avx512")) {
    EXPECT_EQ(avx512->gemm_mr(), 8);
    EXPECT_EQ(avx512->gemm_nr(), 32);
    EXPECT_EQ(detail::packed_a_floats(*avx512, 9, 10), 16 * 10);
    EXPECT_EQ(detail::packed_b_floats(*avx512, 10, 33), 64 * 10);
  }
}

}  // namespace
}  // namespace hpnn::ops
