#include <gtest/gtest.h>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "tensor/ops.hpp"

namespace hpnn::ops {
namespace {

/// Direct (non-im2col) convolution reference.
Tensor naive_conv2d(const Tensor& x, const Tensor& w, const Tensor& bias,
                    const Conv2dGeometry& g) {
  const std::int64_t batch = x.dim(0);
  const std::int64_t filters = w.dim(0);
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  Tensor out(Shape{batch, filters, oh, ow});
  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t f = 0; f < filters; ++f) {
      for (std::int64_t y = 0; y < oh; ++y) {
        for (std::int64_t xo = 0; xo < ow; ++xo) {
          double s = bias.numel() > 0 ? bias.at(f) : 0.0;
          for (std::int64_t c = 0; c < g.in_channels; ++c) {
            for (std::int64_t ky = 0; ky < g.kernel; ++ky) {
              for (std::int64_t kx = 0; kx < g.kernel; ++kx) {
                const std::int64_t iy = y * g.stride + ky - g.padding;
                const std::int64_t ix = xo * g.stride + kx - g.padding;
                if (iy >= 0 && iy < g.in_h && ix >= 0 && ix < g.in_w) {
                  s += static_cast<double>(x.at(n, c, iy, ix)) *
                       w.at(f, c, ky, kx);
                }
              }
            }
          }
          out.at(n, f, y, xo) = static_cast<float>(s);
        }
      }
    }
  }
  return out;
}

struct ConvCase {
  std::int64_t batch, in_ch, h, w, filters, kernel, stride, padding;
};

class ConvParamTest : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvParamTest, ForwardMatchesNaive) {
  const auto& p = GetParam();
  Rng rng(100 + p.kernel * 10 + p.stride);
  const Conv2dGeometry g{p.in_ch, p.h, p.w, p.kernel, p.stride, p.padding};
  const Tensor x = Tensor::normal(Shape{p.batch, p.in_ch, p.h, p.w}, rng);
  const Tensor w =
      Tensor::normal(Shape{p.filters, p.in_ch, p.kernel, p.kernel}, rng);
  const Tensor b = Tensor::normal(Shape{p.filters}, rng);
  const Tensor out = conv2d_forward(x, w, b, g);
  const Tensor ref = naive_conv2d(x, w, b, g);
  EXPECT_TRUE(out.allclose(ref, 1e-4f, 1e-4f));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvParamTest,
    ::testing::Values(ConvCase{1, 1, 5, 5, 1, 3, 1, 0},
                      ConvCase{2, 3, 8, 8, 4, 3, 1, 1},
                      ConvCase{1, 2, 9, 7, 3, 3, 2, 1},
                      ConvCase{2, 1, 6, 6, 2, 5, 1, 0},
                      ConvCase{1, 4, 8, 8, 8, 1, 1, 0},
                      ConvCase{3, 2, 12, 12, 5, 3, 2, 0},
                      ConvCase{1, 1, 4, 4, 1, 4, 4, 0}));

TEST(ConvOpsTest, Im2ColRoundTripShape) {
  Rng rng(7);
  const Conv2dGeometry g{2, 6, 6, 3, 1, 1};
  const Tensor x = Tensor::normal(Shape{2, 6, 6}, rng);
  Tensor cols(Shape{2 * 9, g.out_h() * g.out_w()});
  im2col(x.data(), g, cols.data());
  // col2im of ones-scatter: every input position receives as many
  // contributions as windows covering it (spot-check center > corner).
  Tensor grad(Shape{2, 6, 6});
  Tensor ones(cols.shape(), 1.0f);
  col2im(ones.data(), g, grad.data());
  EXPECT_GT(grad.at(0 * 36 + 3 * 6 + 3), grad.at(0));
}

TEST(ConvOpsTest, ConvBackwardMatchesNumericGradient) {
  Rng rng(21);
  const Conv2dGeometry g{2, 5, 5, 3, 1, 1};
  const Tensor x = Tensor::normal(Shape{2, 2, 5, 5}, rng);
  const Tensor w = Tensor::normal(Shape{3, 2, 3, 3}, rng, 0.0f, 0.5f);
  const Tensor b = Tensor::normal(Shape{3}, rng);

  // Scalar objective: sum of outputs => grad_out = ones.
  const Tensor out = conv2d_forward(x, w, b, g);
  Tensor grad_out(out.shape(), 1.0f);
  Tensor gw(w.shape());
  Tensor gb(b.shape());
  const Tensor gx = conv2d_backward(x, w, grad_out, g, gw, gb);

  const double eps = 1e-2;
  // check a sample of weight coordinates
  for (const std::int64_t idx : {0L, 7L, 23L, 53L}) {
    Tensor wp = w;
    wp.at(idx) += static_cast<float>(eps);
    Tensor wm = w;
    wm.at(idx) -= static_cast<float>(eps);
    const double num =
        (conv2d_forward(x, wp, b, g).sum() -
         conv2d_forward(x, wm, b, g).sum()) /
        (2 * eps);
    EXPECT_NEAR(gw.at(idx), num, 2e-2) << "weight coord " << idx;
  }
  // check a sample of input coordinates
  for (const std::int64_t idx : {0L, 17L, 49L, 99L}) {
    Tensor xp = x;
    xp.at(idx) += static_cast<float>(eps);
    Tensor xm = x;
    xm.at(idx) -= static_cast<float>(eps);
    const double num = (conv2d_forward(xp, w, b, g).sum() -
                        conv2d_forward(xm, w, b, g).sum()) /
                       (2 * eps);
    EXPECT_NEAR(gx.at(idx), num, 2e-2) << "input coord " << idx;
  }
  // bias gradient of a sum objective is the output plane size per filter
  const float plane = static_cast<float>(2 * g.out_h() * g.out_w());
  for (std::int64_t f = 0; f < 3; ++f) {
    EXPECT_NEAR(gb.at(f), plane, 1e-3);
  }
}

TEST(ConvOpsTest, GeometryMismatchThrows) {
  const Conv2dGeometry g{2, 5, 5, 3, 1, 1};
  Tensor x(Shape{1, 3, 5, 5});  // wrong channels
  Tensor w(Shape{3, 2, 3, 3});
  Tensor b(Shape{3});
  EXPECT_THROW(conv2d_forward(x, w, b, g), InvariantError);
}

TEST(ConvOpsTest, BiaslessConv) {
  Rng rng(5);
  const Conv2dGeometry g{1, 4, 4, 3, 1, 0};
  const Tensor x = Tensor::normal(Shape{1, 1, 4, 4}, rng);
  const Tensor w = Tensor::normal(Shape{2, 1, 3, 3}, rng);
  const Tensor out = conv2d_forward(x, w, Tensor(), g);
  const Tensor ref = naive_conv2d(x, w, Tensor(), g);
  EXPECT_TRUE(out.allclose(ref, 1e-4f, 1e-4f));
}

}  // namespace
}  // namespace hpnn::ops
