#include <gtest/gtest.h>

#include <cmath>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "tensor/ops.hpp"

namespace hpnn::ops {
namespace {

TEST(MaxPoolTest, SelectsWindowMaxima) {
  Tensor x(Shape{1, 1, 4, 4},
           std::vector<float>{1, 2, 3, 4,    //
                              5, 6, 7, 8,    //
                              9, 10, 11, 12, //
                              13, 14, 15, 16});
  const auto res = maxpool2d_forward(x, 2, 2);
  EXPECT_EQ(res.output.shape(), Shape({1, 1, 2, 2}));
  EXPECT_EQ(res.output.at(0), 6.0f);
  EXPECT_EQ(res.output.at(1), 8.0f);
  EXPECT_EQ(res.output.at(2), 14.0f);
  EXPECT_EQ(res.output.at(3), 16.0f);
}

TEST(MaxPoolTest, BackwardRoutesToArgmax) {
  Tensor x(Shape{1, 1, 4, 4},
           std::vector<float>{1, 2, 3, 4,    //
                              5, 6, 7, 8,    //
                              9, 10, 11, 12, //
                              13, 14, 15, 16});
  const auto res = maxpool2d_forward(x, 2, 2);
  Tensor g(res.output.shape(), std::vector<float>{10, 20, 30, 40});
  const Tensor gx = maxpool2d_backward(g, x.shape(), res.argmax);
  EXPECT_EQ(gx.at(0, 0, 1, 1), 10.0f);   // position of 6
  EXPECT_EQ(gx.at(0, 0, 1, 3), 20.0f);   // position of 8
  EXPECT_EQ(gx.at(0, 0, 3, 1), 30.0f);   // position of 14
  EXPECT_EQ(gx.at(0, 0, 3, 3), 40.0f);   // position of 16
  EXPECT_EQ(gx.at(0, 0, 0, 0), 0.0f);
}

TEST(MaxPoolTest, OverlappingWindowsAccumulateGradients) {
  Tensor x(Shape{1, 1, 3, 3}, std::vector<float>{0, 0, 0,  //
                                                 0, 9, 0,  //
                                                 0, 0, 0});
  const auto res = maxpool2d_forward(x, 2, 1);
  // all four windows select the center element
  Tensor g(res.output.shape(), 1.0f);
  const Tensor gx = maxpool2d_backward(g, x.shape(), res.argmax);
  EXPECT_EQ(gx.at(0, 0, 1, 1), 4.0f);
}

TEST(MaxPoolTest, NanInputStillSelectsValidArgmax) {
  Tensor x(Shape{1, 1, 2, 2},
           std::vector<float>{NAN, NAN, NAN, NAN});
  const auto res = maxpool2d_forward(x, 2, 2);
  ASSERT_EQ(res.argmax.size(), 1u);
  EXPECT_GE(res.argmax[0], 0);
  EXPECT_LT(res.argmax[0], 4);
}

TEST(MaxPoolTest, MultiChannelBatch) {
  Rng rng(3);
  const Tensor x = Tensor::normal(Shape{2, 3, 6, 6}, rng);
  const auto res = maxpool2d_forward(x, 2, 2);
  EXPECT_EQ(res.output.shape(), Shape({2, 3, 3, 3}));
  // each output must equal the max of its window
  for (std::int64_t i = 0; i < res.output.numel(); ++i) {
    EXPECT_EQ(res.output.at(i), x.at(res.argmax[static_cast<std::size_t>(i)]));
  }
}

TEST(AvgPoolTest, AveragesWindows) {
  Tensor x(Shape{1, 1, 4, 4},
           std::vector<float>{1, 2, 3, 4,    //
                              5, 6, 7, 8,    //
                              9, 10, 11, 12, //
                              13, 14, 15, 16});
  const Tensor out = avgpool2d_forward(x, 2, 2);
  EXPECT_EQ(out.shape(), Shape({1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(out.at(0), (1 + 2 + 5 + 6) / 4.0f);
  EXPECT_FLOAT_EQ(out.at(3), (11 + 12 + 15 + 16) / 4.0f);
}

TEST(AvgPoolTest, BackwardSpreadsUniformly) {
  Tensor g(Shape{1, 1, 2, 2}, 4.0f);
  const Tensor gx = avgpool2d_backward(g, Shape{1, 1, 4, 4}, 2, 2);
  for (std::int64_t i = 0; i < gx.numel(); ++i) {
    EXPECT_FLOAT_EQ(gx.at(i), 1.0f);  // 4 / window size
  }
}

TEST(AvgPoolTest, OverlappingWindowsAccumulate) {
  Tensor g(Shape{1, 1, 2, 2}, 4.0f);
  const Tensor gx = avgpool2d_backward(g, Shape{1, 1, 3, 3}, 2, 1);
  EXPECT_FLOAT_EQ(gx.at(0, 0, 1, 1), 4.0f);  // center hit by all 4 windows
  EXPECT_FLOAT_EQ(gx.at(0, 0, 0, 0), 1.0f);
}

TEST(AvgPoolTest, WindowLargerThanInputThrows) {
  Tensor x(Shape{1, 1, 2, 2});
  EXPECT_THROW(avgpool2d_forward(x, 3, 1), InvariantError);
}

TEST(GlobalAvgPoolTest, ForwardAveragesPlanes) {
  Tensor x(Shape{1, 2, 2, 2},
           std::vector<float>{1, 2, 3, 4, 10, 20, 30, 40});
  const Tensor out = global_avgpool_forward(x);
  EXPECT_EQ(out.shape(), Shape({1, 2}));
  EXPECT_FLOAT_EQ(out.at(0, 0), 2.5f);
  EXPECT_FLOAT_EQ(out.at(0, 1), 25.0f);
}

TEST(GlobalAvgPoolTest, BackwardSpreadsUniformly) {
  Tensor g(Shape{1, 2}, std::vector<float>{4.0f, 8.0f});
  const Tensor gx = global_avgpool_backward(g, Shape{1, 2, 2, 2});
  EXPECT_FLOAT_EQ(gx.at(0, 0, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(gx.at(0, 1, 1, 1), 2.0f);
}

TEST(SoftmaxTest, RowsSumToOne) {
  Rng rng(9);
  const Tensor logits = Tensor::normal(Shape{5, 10}, rng, 0.0f, 3.0f);
  const Tensor p = softmax_rows(logits);
  for (std::int64_t i = 0; i < 5; ++i) {
    double s = 0.0;
    for (std::int64_t j = 0; j < 10; ++j) {
      EXPECT_GT(p.at(i, j), 0.0f);
      s += p.at(i, j);
    }
    EXPECT_NEAR(s, 1.0, 1e-5);
  }
}

TEST(SoftmaxTest, StableForLargeLogits) {
  Tensor logits(Shape{1, 3}, std::vector<float>{1000.0f, 1000.0f, -1000.0f});
  const Tensor p = softmax_rows(logits);
  EXPECT_NEAR(p.at(0, 0), 0.5f, 1e-5f);
  EXPECT_NEAR(p.at(0, 1), 0.5f, 1e-5f);
  EXPECT_NEAR(p.at(0, 2), 0.0f, 1e-5f);
}

TEST(SoftmaxTest, LogSoftmaxMatchesLogOfSoftmax) {
  Rng rng(10);
  const Tensor logits = Tensor::normal(Shape{4, 6}, rng, 0.0f, 2.0f);
  const Tensor p = softmax_rows(logits);
  const Tensor lp = log_softmax_rows(logits);
  for (std::int64_t i = 0; i < lp.numel(); ++i) {
    EXPECT_NEAR(lp.at(i), std::log(p.at(i)), 1e-4);
  }
}

TEST(ArgmaxRowsTest, PicksPerRowMaximum) {
  Tensor s(Shape{2, 3}, std::vector<float>{1, 5, 2,  //
                                           9, 0, 3});
  const auto idx = argmax_rows(s);
  ASSERT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx[0], 1);
  EXPECT_EQ(idx[1], 0);
}

}  // namespace
}  // namespace hpnn::ops
