// Full HPNN lifecycle (Fig. 1): owner trains with key-dependent
// backpropagation -> publishes the obfuscated model -> an authorized user
// runs it on the trusted device (int8 datapath, sealed key) -> an attacker
// loads the same artifact into the baseline architecture and fails.
#include <gtest/gtest.h>

#include <sstream>

#include "attack/finetune.hpp"
#include "data/augment.hpp"
#include "data/synthetic.hpp"
#include "hpnn/owner.hpp"
#include "hw/device.hpp"
#include "nn/trainer.hpp"

namespace hpnn {
namespace {

TEST(EndToEndTest, FullLifecycle) {
  // ---- 1. Owner side: data + key-dependent training -------------------
  data::SyntheticConfig dc;
  dc.train_per_class = 80;
  dc.test_per_class = 20;
  dc.image_size = 16;
  dc.noise_stddev = 0.06;  // easy difficulty keeps this lifecycle test fast
  dc.jitter = 0.08;
  dc.seed = 31;
  const auto split =
      data::make_dataset(data::SyntheticFamily::kFashionSynth, dc);

  models::ModelConfig mc;
  mc.in_channels = 1;
  mc.image_size = 16;
  mc.init_seed = 8;

  Rng krng(2024);
  const obf::HpnnKey key = obf::HpnnKey::random(krng);
  const std::uint64_t schedule_seed = 0xC0FFEE;
  obf::Scheduler sched(schedule_seed);
  obf::LockedModel owner_model(models::Architecture::kCnn1, mc, key, sched);

  obf::OwnerTrainOptions topt;
  topt.epochs = 6;
  topt.sgd = {0.01, 0.9, 5e-4};
  const auto report =
      obf::train_locked_model(owner_model, split.train, split.test, topt);
  ASSERT_GT(report.test_accuracy, 0.8) << "owner training failed";

  // ---- 2. Publish to the model zoo (no key in the artifact) -----------
  std::stringstream zoo;
  obf::publish_model(zoo, owner_model);
  const obf::PublishedModel artifact = obf::read_published_model(zoo);
  EXPECT_EQ(zoo.str().find(key.to_hex()), std::string::npos);

  // ---- 3. Authorized user: trusted device with sealed key -------------
  hw::TrustedDevice device(key, schedule_seed);
  device.load_model(artifact);
  std::int64_t correct = 0;
  const std::int64_t n = split.test.size();
  const std::int64_t sample = split.test.images.numel() / n;
  for (std::int64_t at = 0; at < n; at += 50) {
    const std::int64_t count = std::min<std::int64_t>(50, n - at);
    Tensor batch(Shape{count, 1, 16, 16},
                 std::vector<float>(
                     split.test.images.data() + at * sample,
                     split.test.images.data() + (at + count) * sample));
    const auto pred = device.classify(batch);
    for (std::int64_t i = 0; i < count; ++i) {
      correct += (pred[static_cast<std::size_t>(i)] ==
                  split.test.labels[static_cast<std::size_t>(at + i)]);
    }
  }
  const double device_acc = static_cast<double>(correct) / n;
  EXPECT_GT(device_acc, report.test_accuracy - 0.1)
      << "trusted device lost too much accuracy to quantization";

  // ---- 4. Attacker: baseline architecture, no key ---------------------
  auto stolen = obf::instantiate_baseline(artifact);
  const double attacker_acc = nn::evaluate_accuracy(
      *stolen, split.test.images, split.test.labels);
  EXPECT_LT(attacker_acc, 0.35) << "obfuscation failed to collapse accuracy";
  EXPECT_GT(report.test_accuracy - attacker_acc, 0.45)
      << "accuracy drop too small";

  // ---- 5. Attacker with thief data still below the owner --------------
  Rng trng(77);
  const data::Dataset thief = data::thief_subset(split.train, 0.1, trng);
  attack::FineTuneOptions fopt;
  fopt.epochs = 5;
  fopt.sgd = {0.01, 0.9, 5e-4};
  const auto ft = attack::finetune_attack(
      artifact, thief, split.test, attack::InitStrategy::kStolenWeights,
      fopt);
  EXPECT_LT(ft.final_accuracy, report.test_accuracy);
}

TEST(EndToEndTest, OwnerTrainingWithAugmentationAndSchedules) {
  // Exercises the full owner-side training toolchain: augmented data
  // (shift/flip/cutout/noise), cosine lr annealing and gradient clipping on
  // a key-locked network — the pieces compose without interfering with
  // key-dependent backpropagation.
  data::SyntheticConfig dc;
  dc.train_per_class = 60;
  dc.test_per_class = 15;
  dc.image_size = 16;
  dc.noise_stddev = 0.06;
  dc.jitter = 0.08;
  dc.seed = 13;
  const auto split =
      data::make_dataset(data::SyntheticFamily::kFashionSynth, dc);

  data::AugmentConfig ac;
  ac.shift_pixels = 1;
  ac.hflip_prob = 0.5;
  ac.erase_prob = 0.2;
  const data::Dataset augmented = data::augment_dataset(split.train, ac, 7);
  const data::Dataset train = data::concat(split.train, augmented);
  ASSERT_EQ(train.size(), 2 * split.train.size());

  Rng krng(77);
  const obf::HpnnKey key = obf::HpnnKey::random(krng);
  obf::Scheduler sched(5);
  models::ModelConfig mc;
  mc.in_channels = 1;
  mc.image_size = 16;
  mc.init_seed = 9;
  obf::LockedModel model(models::Architecture::kCnn1, mc, key, sched);

  nn::SoftmaxCrossEntropy loss;
  nn::Sgd opt(nn::parameters_of(model.network()), {0.02, 0.9, 5e-4});
  nn::CosineLr schedule(opt, /*total_epochs=*/6, /*min_lr=*/1e-3);
  const std::size_t n = train.labels.size();
  Rng shuffle_rng(3);
  model.network().set_training(true);
  for (int epoch = 0; epoch < 6; ++epoch) {
    const auto order = shuffle_rng.permutation(n);
    for (std::size_t at = 0; at < n; at += 32) {
      const std::size_t count = std::min<std::size_t>(32, n - at);
      auto [batch, labels] =
          nn::gather_batch(train.images, train.labels, order, at, count);
      nn::zero_grads(model.network());
      const Tensor scores = model.network().forward(batch);
      (void)loss.forward(scores, labels);
      model.network().backward(loss.backward());
      (void)nn::clip_grad_norm(nn::parameters_of(model.network()), 5.0);
      opt.step();
    }
    schedule.epoch_end();
  }
  EXPECT_LT(opt.lr(), 0.02);  // cosine schedule actually annealed

  const double with_key = nn::evaluate_accuracy(
      model.network(), split.test.images, split.test.labels);
  model.remove_locks();
  const double no_key = nn::evaluate_accuracy(
      model.network(), split.test.images, split.test.labels);
  EXPECT_GT(with_key, 0.75);
  EXPECT_LT(no_key, with_key - 0.35);
}

TEST(EndToEndTest, SameKeyDifferentModelsShareDevice) {
  // A model owner can train several DNNs with the same HPNN key (Sec. III-A)
  // and an end-user's single device runs them all.
  data::SyntheticConfig dc;
  dc.train_per_class = 30;
  dc.test_per_class = 10;
  dc.image_size = 16;
  dc.seed = 41;
  const auto fashion =
      data::make_dataset(data::SyntheticFamily::kFashionSynth, dc);
  const auto digits =
      data::make_dataset(data::SyntheticFamily::kDigitSynth, dc);

  Rng krng(55);
  const obf::HpnnKey key = obf::HpnnKey::random(krng);
  const std::uint64_t schedule_seed = 99;
  obf::Scheduler sched(schedule_seed);

  models::ModelConfig mc1;
  mc1.in_channels = 1;
  mc1.image_size = 16;
  mc1.init_seed = 1;
  obf::LockedModel m1(models::Architecture::kCnn1, mc1, key, sched);

  models::ModelConfig mc3;
  mc3.in_channels = 3;
  mc3.image_size = 16;
  mc3.init_seed = 2;
  mc3.width_mult = 0.5;
  obf::LockedModel m3(models::Architecture::kCnn3, mc3, key, sched);

  obf::OwnerTrainOptions topt;
  topt.epochs = 3;
  topt.sgd = {0.01, 0.9, 5e-4};
  (void)obf::train_locked_model(m1, fashion.train, fashion.test, topt);
  (void)obf::train_locked_model(m3, digits.train, digits.test, topt);

  std::stringstream s1, s3;
  obf::publish_model(s1, m1);
  obf::publish_model(s3, m3);

  hw::TrustedDevice device(key, schedule_seed);
  device.load_model(obf::read_published_model(s1));
  Rng rng(3);
  EXPECT_EQ(device.infer(Tensor::normal(Shape{1, 1, 16, 16}, rng)).shape(),
            Shape({1, 10}));
  device.load_model(obf::read_published_model(s3));
  EXPECT_EQ(device.infer(Tensor::normal(Shape{1, 3, 16, 16}, rng)).shape(),
            Shape({1, 10}));
}

}  // namespace
}  // namespace hpnn
