// Serving-path observability contract: while the trusted device classifies
// requests, the metrics layer must record (a) exactly as many latency
// samples as requests served, (b) a MAC count that matches the analytic
// count derived from the published architecture, and (c) a deterministic
// snapshot that is byte-identical across two identical single-threaded runs.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "core/metrics.hpp"
#include "core/threadpool.hpp"
#include "hpnn/model_io.hpp"
#include "hpnn/owner.hpp"
#include "hw/device.hpp"
#include "nn/layers.hpp"

namespace hpnn::hw {
namespace {

struct PublishedSetup {
  obf::HpnnKey key;
  std::uint64_t schedule_seed = 12345;
  obf::PublishedModel artifact;
};

PublishedSetup make_published(models::Architecture arch,
                              const models::ModelConfig& cfg,
                              std::uint64_t key_seed) {
  PublishedSetup s;
  Rng rng(key_seed);
  s.key = obf::HpnnKey::random(rng);
  obf::Scheduler sched(s.schedule_seed);
  obf::LockedModel model(arch, cfg, s.key, sched);
  std::stringstream ss;
  obf::publish_model(ss, model);
  s.artifact = obf::read_published_model(ss);
  return s;
}

models::ModelConfig cnn1_cfg() {
  models::ModelConfig cfg;
  cfg.in_channels = 1;
  cfg.image_size = 16;
  cfg.init_seed = 7;
  return cfg;
}

/// MACs the device's int8 datapath issues for one batch of `batch` images,
/// derived from the published architecture alone. The Mmu performs one
/// matmul per sample per conv layer (m = filters, k = C*K*K, n = oh*ow)
/// and one batched matmul per linear layer (m = batch, k = in, n = out).
std::uint64_t analytic_macs(const obf::PublishedModel& artifact,
                            std::int64_t batch) {
  const auto net = obf::instantiate_baseline(artifact);
  std::uint64_t macs = 0;
  for (std::size_t i = 0; i < net->size(); ++i) {
    if (const auto* conv = dynamic_cast<const nn::Conv2d*>(&net->at(i))) {
      const auto& g = conv->geometry();
      const std::uint64_t per_sample =
          static_cast<std::uint64_t>(conv->out_channels()) *
          static_cast<std::uint64_t>(g.in_channels * g.kernel * g.kernel) *
          static_cast<std::uint64_t>(g.out_h() * g.out_w());
      macs += static_cast<std::uint64_t>(batch) * per_sample;
    } else if (const auto* fc = dynamic_cast<const nn::Linear*>(&net->at(i))) {
      macs += static_cast<std::uint64_t>(batch) *
              static_cast<std::uint64_t>(fc->in_features()) *
              static_cast<std::uint64_t>(fc->out_features());
    }
  }
  return macs;
}

Tensor request_batch(std::int64_t batch, std::uint64_t seed) {
  Rng rng(seed);
  return Tensor::normal(Shape{batch, 1, 16, 16}, rng, 0.0f, 0.25f);
}

/// Single-threaded pool for the duration of a test: scheduling-dependent
/// counters (caller chunks, queue waits) are only reproducible when the
/// inline execution path handles every chunk.
class ServingMetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!metrics::enabled()) {
      GTEST_SKIP() << "metrics disabled";
    }
    core::set_thread_count(1);
  }
  void TearDown() override { core::set_thread_count(0); }
};

TEST_F(ServingMetricsTest, MacCounterMatchesAnalyticCount) {
  auto s = make_published(models::Architecture::kCnn1, cnn1_cfg(), 19);
  TrustedDevice device(s.key, s.schedule_seed);
  device.load_model(s.artifact);

  metrics::MetricsRegistry::instance().reset();
  device.reset_stats();

  constexpr std::int64_t kBatch = 4;
  constexpr int kRequests = 3;
  for (int r = 0; r < kRequests; ++r) {
    (void)device.classify(request_batch(kBatch, 100 + r));
  }

  const std::uint64_t expected = kRequests * analytic_macs(s.artifact, kBatch);
  // Device-local hardware stats and the global metrics counter must agree
  // with each other and with the architecture-derived count.
  EXPECT_EQ(device.mmu_stats().mac_ops, expected);
  EXPECT_EQ(metrics::MetricsRegistry::instance()
                .counter("hw.mmu.mac_ops")
                .value(),
            expected);
}

TEST_F(ServingMetricsTest, LatencyHistogramCountsEveryRequest) {
  auto s = make_published(models::Architecture::kCnn1, cnn1_cfg(), 23);
  TrustedDevice device(s.key, s.schedule_seed);
  device.load_model(s.artifact);

  metrics::MetricsRegistry::instance().reset();

  constexpr int kRequests = 5;
  constexpr std::int64_t kBatch = 2;
  for (int r = 0; r < kRequests; ++r) {
    (void)device.infer(request_batch(kBatch, 200 + r));
  }

  auto& reg = metrics::MetricsRegistry::instance();
  EXPECT_EQ(reg.counter("hw.device.infer.requests").value(),
            static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(reg.counter("hw.device.infer.samples").value(),
            static_cast<std::uint64_t>(kRequests * kBatch));
  // One latency observation per request — never dropped, never doubled.
  EXPECT_EQ(reg.histogram("hw.device.infer.latency_us").count(),
            static_cast<std::uint64_t>(kRequests));
  const metrics::Snapshot snap = reg.snapshot();
  for (const auto& h : snap.histograms) {
    if (h.name == "hw.device.infer.latency_us") {
      EXPECT_LE(h.p50, h.p95);
      EXPECT_LE(h.p95, h.p99);
      EXPECT_LE(h.p99, h.max);
    }
  }
}

TEST_F(ServingMetricsTest, DeterministicSnapshotIsByteIdenticalAcrossRuns) {
  auto s = make_published(models::Architecture::kCnn1, cnn1_cfg(), 29);

  const auto serve_and_snapshot = [&s]() {
    metrics::MetricsRegistry::instance().reset();
    TrustedDevice device(s.key, s.schedule_seed);
    device.load_model(s.artifact);
    for (int r = 0; r < 3; ++r) {
      (void)device.classify(request_batch(2, 300 + r));
    }
    std::ostringstream os;
    metrics::write_json(os, metrics::MetricsRegistry::instance().snapshot(),
                        /*deterministic=*/true);
    return os.str();
  };

  const std::string first = serve_and_snapshot();
  const std::string second = serve_and_snapshot();
  EXPECT_EQ(first, second)
      << "deterministic snapshot differed between identical runs";
  // Sanity: the snapshot actually carries serving counters.
  EXPECT_NE(first.find("hw.mmu.mac_ops"), std::string::npos);
  EXPECT_NE(first.find("hw.device.infer.requests"), std::string::npos);
}

}  // namespace
}  // namespace hpnn::hw
