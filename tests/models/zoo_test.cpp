#include "models/zoo.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "nn/trainer.hpp"

namespace hpnn::models {
namespace {

ModelConfig cfg(std::int64_t channels, std::int64_t size, double width = 1.0) {
  ModelConfig c;
  c.in_channels = channels;
  c.image_size = size;
  c.num_classes = 10;
  c.init_seed = 3;
  c.width_mult = width;
  return c;
}

TEST(ZooTest, ArchNames) {
  EXPECT_EQ(arch_name(Architecture::kCnn1), "CNN1");
  EXPECT_EQ(arch_name(Architecture::kCnn2), "CNN2");
  EXPECT_EQ(arch_name(Architecture::kCnn3), "CNN3");
  EXPECT_EQ(arch_name(Architecture::kResNet18), "ResNet18");
}

// Table I column 3: locked-neuron counts at the paper's native resolutions.
TEST(ZooTest, Cnn1NeuronCountMatchesTable1) {
  EXPECT_EQ(locked_neuron_count(Architecture::kCnn1, cfg(1, 28)), 4352);
}

TEST(ZooTest, Cnn2NeuronCountMatchesTable1) {
  EXPECT_EQ(locked_neuron_count(Architecture::kCnn2, cfg(3, 32)), 198144);
}

TEST(ZooTest, Cnn3NeuronCountMatchesTable1) {
  EXPECT_EQ(locked_neuron_count(Architecture::kCnn3, cfg(3, 32)), 29696);
}

struct ArchCase {
  Architecture arch;
  std::int64_t channels;
  std::int64_t size;
  double width;
};

class ArchBuildTest : public ::testing::TestWithParam<ArchCase> {};

TEST_P(ArchBuildTest, ForwardProducesLogits) {
  const auto& p = GetParam();
  auto net = build(p.arch, cfg(p.channels, p.size, p.width));
  Rng rng(1);
  const Tensor x =
      Tensor::normal(Shape{2, p.channels, p.size, p.size}, rng);
  net->set_training(true);
  const Tensor y = net->forward(x);
  EXPECT_EQ(y.shape(), Shape({2, 10}));
}

TEST_P(ArchBuildTest, BackwardRunsAndFillsGrads) {
  const auto& p = GetParam();
  auto net = build(p.arch, cfg(p.channels, p.size, p.width));
  Rng rng(2);
  const Tensor x =
      Tensor::normal(Shape{2, p.channels, p.size, p.size}, rng);
  net->set_training(true);
  nn::SoftmaxCrossEntropy loss;
  const Tensor scores = net->forward(x);
  (void)loss.forward(scores, {0, 1});
  (void)net->backward(loss.backward());
  double grad_norm = 0.0;
  for (const auto* param : nn::parameters_of(*net)) {
    grad_norm += param->grad.squared_norm();
  }
  EXPECT_GT(grad_norm, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    SmallConfigs, ArchBuildTest,
    ::testing::Values(ArchCase{Architecture::kCnn1, 1, 16, 0.5},
                      ArchCase{Architecture::kCnn2, 3, 16, 0.125},
                      ArchCase{Architecture::kCnn3, 3, 16, 0.5},
                      ArchCase{Architecture::kResNet18, 3, 16, 0.125},
                      ArchCase{Architecture::kMlp, 1, 16, 0.5},
                      ArchCase{Architecture::kLeNet5, 1, 16, 1.0}),
    [](const auto& info) { return arch_name(info.param.arch); });

TEST(ZooTest, ArchNameRoundTrip) {
  for (const auto arch : all_architectures()) {
    EXPECT_EQ(arch_from_name(arch_name(arch)), arch);
  }
  EXPECT_THROW(arch_from_name("VGG19"), Error);
}

TEST(ZooTest, MlpLocksEveryHiddenLayer) {
  std::vector<Shape> shapes;
  ModelConfig c = cfg(1, 16, 0.5);
  c.activation = [&shapes](const std::string& name, const Shape& s) {
    shapes.push_back(s);
    return std::make_unique<nn::ReLU>(name);
  };
  (void)build(Architecture::kMlp, c);
  ASSERT_EQ(shapes.size(), 3u);
  EXPECT_EQ(shapes[0], Shape({128}));  // 256 * 0.5
  EXPECT_EQ(shapes[1], Shape({64}));
  EXPECT_EQ(shapes[2], Shape({32}));
}

TEST(ZooTest, LeNet5Structure) {
  // 2 conv ReLUs + 2 FC ReLUs = 4 locked layers.
  std::int64_t count = 0;
  ModelConfig c = cfg(1, 28);
  c.activation = [&count](const std::string& name, const Shape&) {
    ++count;
    return std::make_unique<nn::ReLU>(name);
  };
  auto net = build(Architecture::kLeNet5, c);
  EXPECT_EQ(count, 4);
  Rng rng(1);
  EXPECT_EQ(net->forward(Tensor::normal(Shape{1, 1, 28, 28}, rng)).shape(),
            Shape({1, 10}));
}

TEST(ZooTest, TooSmallImageThrowsShapeError) {
  EXPECT_THROW(build(Architecture::kCnn1, cfg(1, 12)), ShapeError);
}

TEST(ZooTest, ActivationFactoryReceivesShapes) {
  std::vector<Shape> shapes;
  ModelConfig c = cfg(1, 28);
  c.activation = [&shapes](const std::string& name, const Shape& s) {
    shapes.push_back(s);
    return std::make_unique<nn::ReLU>(name);
  };
  (void)build(Architecture::kCnn1, c);
  ASSERT_EQ(shapes.size(), 2u);  // CNN1 has 2 ReLU layers
  EXPECT_EQ(shapes[0], Shape({6, 24, 24}));
  EXPECT_EQ(shapes[1], Shape({14, 8, 8}));
}

TEST(ZooTest, WidthMultScalesChannels) {
  const auto full = locked_neuron_count(Architecture::kCnn1, cfg(1, 28, 1.0));
  const auto half = locked_neuron_count(Architecture::kCnn1, cfg(1, 28, 0.5));
  EXPECT_LT(half, full);
  EXPECT_GT(half, 0);
}

TEST(ZooTest, DeterministicInitPerSeed) {
  auto a = build(Architecture::kCnn3, cfg(3, 16, 0.5));
  auto b = build(Architecture::kCnn3, cfg(3, 16, 0.5));
  const auto pa = nn::parameters_of(*a);
  const auto pb = nn::parameters_of(*b);
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(pa[i]->value.allclose(pb[i]->value, 0.0f, 0.0f));
  }
}

TEST(ZooTest, CopyParametersTransfersState) {
  auto src = build(Architecture::kResNet18, cfg(3, 16, 0.125));
  ModelConfig other = cfg(3, 16, 0.125);
  other.init_seed = 999;
  auto dst = build(Architecture::kResNet18, other);

  // advance src batchnorm stats so buffers differ
  Rng rng(5);
  src->set_training(true);
  (void)src->forward(Tensor::normal(Shape{2, 3, 16, 16}, rng));

  copy_parameters(*src, *dst);
  const auto ps = nn::parameters_of(*src);
  const auto pd = nn::parameters_of(*dst);
  for (std::size_t i = 0; i < ps.size(); ++i) {
    EXPECT_TRUE(ps[i]->value.allclose(pd[i]->value, 0.0f, 0.0f));
  }
  const auto bs = nn::buffers_of(*src);
  const auto bd = nn::buffers_of(*dst);
  for (std::size_t i = 0; i < bs.size(); ++i) {
    EXPECT_TRUE(bs[i].second->allclose(*bd[i].second, 0.0f, 0.0f));
  }
}

TEST(ZooTest, CopyParametersMismatchThrows) {
  auto a = build(Architecture::kCnn1, cfg(1, 16));
  auto b = build(Architecture::kCnn3, cfg(3, 16));
  EXPECT_THROW(copy_parameters(*a, *b), InvariantError);
}

TEST(ZooTest, InvalidConfigThrows) {
  ModelConfig c = cfg(0, 16);
  EXPECT_THROW(build(Architecture::kCnn1, c), InvariantError);
}

}  // namespace
}  // namespace hpnn::models
