#include "hw/quant.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.hpp"

namespace hpnn::hw {
namespace {

TEST(QuantTest, RoundTripErrorBounded) {
  Rng rng(1);
  const Tensor x = Tensor::normal(Shape{1000}, rng, 0.0f, 2.0f);
  const QuantizedTensor q = quantize(x);
  const Tensor back = dequantize(q);
  // symmetric quantization error is at most scale/2 per element
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_LE(std::fabs(x.at(i) - back.at(i)), q.scale * 0.5f + 1e-7f);
  }
}

TEST(QuantTest, ScaleMapsMaxAbsTo127) {
  Tensor x(Shape{3}, std::vector<float>{-2.54f, 1.0f, 0.5f});
  const QuantizedTensor q = quantize(x);
  EXPECT_FLOAT_EQ(q.scale, 2.54f / 127.0f);
  EXPECT_EQ(q.values[0], -127);
}

TEST(QuantTest, ZeroTensorHasUnitScale) {
  Tensor x(Shape{4});
  const QuantizedTensor q = quantize(x);
  EXPECT_FLOAT_EQ(q.scale, 1.0f);
  for (const auto v : q.values) {
    EXPECT_EQ(v, 0);
  }
}

TEST(QuantTest, SymmetricRange) {
  Rng rng(2);
  const Tensor x = Tensor::uniform(Shape{512}, rng, -3.0f, 3.0f);
  const QuantizedTensor q = quantize(x);
  for (const auto v : q.values) {
    EXPECT_GE(v, -127);
    EXPECT_LE(v, 127);
  }
}

TEST(QuantTest, PreservesShape) {
  Tensor x(Shape{2, 3, 4}, 1.0f);
  const QuantizedTensor q = quantize(x);
  EXPECT_EQ(q.shape, x.shape());
  EXPECT_EQ(dequantize(q).shape(), x.shape());
}

TEST(QuantTest, NegationCommutesWithQuantization) {
  // Needed by the lock equivalence: Q(-x) == -Q(x) elementwise.
  Rng rng(3);
  const Tensor x = Tensor::normal(Shape{256}, rng);
  const QuantizedTensor qx = quantize(x);
  const QuantizedTensor qnx = quantize(-x);
  EXPECT_FLOAT_EQ(qx.scale, qnx.scale);
  for (std::size_t i = 0; i < qx.values.size(); ++i) {
    EXPECT_EQ(qx.values[i], -qnx.values[i]);
  }
}

TEST(QuantTest, MaxErrorHelperAgrees) {
  Rng rng(4);
  const Tensor x = Tensor::normal(Shape{128}, rng);
  const QuantizedTensor q = quantize(x);
  EXPECT_LE(max_quantization_error(x), q.scale * 0.5f + 1e-7f);
}

}  // namespace
}  // namespace hpnn::hw
