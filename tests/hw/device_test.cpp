// End-to-end contract of the trusted device: its integer datapath with
// on-chip key expansion must reproduce the owner's float locked model.
#include "hw/device.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/error.hpp"
#include "hpnn/owner.hpp"
#include "tensor/ops.hpp"

namespace hpnn::hw {
namespace {

struct PublishedSetup {
  obf::HpnnKey key;
  std::uint64_t schedule_seed = 12345;
  obf::PublishedModel artifact;
  std::unique_ptr<obf::LockedModel> owner_model;
};

PublishedSetup make_published(models::Architecture arch,
                              const models::ModelConfig& cfg,
                              std::uint64_t key_seed) {
  PublishedSetup s;
  Rng rng(key_seed);
  s.key = obf::HpnnKey::random(rng);
  obf::Scheduler sched(s.schedule_seed);
  s.owner_model = std::make_unique<obf::LockedModel>(arch, cfg, s.key, sched);
  std::stringstream ss;
  obf::publish_model(ss, *s.owner_model);
  s.artifact = obf::read_published_model(ss);
  return s;
}

models::ModelConfig cnn1_cfg() {
  models::ModelConfig cfg;
  cfg.in_channels = 1;
  cfg.image_size = 16;
  cfg.init_seed = 7;
  return cfg;
}

TEST(DeviceTest, RequiresLoadedModel) {
  Rng rng(1);
  TrustedDevice device(obf::HpnnKey::random(rng), 1);
  EXPECT_FALSE(device.has_model());
  EXPECT_THROW(device.infer(Tensor(Shape{1, 1, 16, 16})), InvariantError);
}

TEST(DeviceTest, LogitShape) {
  auto s = make_published(models::Architecture::kCnn1, cnn1_cfg(), 11);
  TrustedDevice device(s.key, s.schedule_seed);
  device.load_model(s.artifact);
  Rng rng(2);
  const Tensor x = Tensor::normal(Shape{3, 1, 16, 16}, rng, 0.0f, 0.25f);
  EXPECT_EQ(device.infer(x).shape(), Shape({3, 10}));
}

TEST(DeviceTest, MatchesFloatLockedModelClosely) {
  auto s = make_published(models::Architecture::kCnn1, cnn1_cfg(), 13);
  TrustedDevice device(s.key, s.schedule_seed);
  device.load_model(s.artifact);

  Rng rng(3);
  const Tensor x = Tensor::normal(Shape{16, 1, 16, 16}, rng, 0.0f, 0.25f);
  const Tensor float_logits = s.owner_model->network().forward(x);
  const Tensor device_logits = device.infer(x);

  // int8 dynamic quantization: logits agree to a few percent, and the
  // predicted classes agree on a large majority of samples.
  const auto float_pred = ops::argmax_rows(float_logits);
  const auto device_pred = ops::argmax_rows(device_logits);
  int agree = 0;
  for (std::size_t i = 0; i < float_pred.size(); ++i) {
    agree += (float_pred[i] == device_pred[i]);
  }
  EXPECT_GE(agree, 14) << "quantized argmax diverged too often";
}

TEST(DeviceTest, WrongKeyDeviceDiverges) {
  auto s = make_published(models::Architecture::kCnn1, cnn1_cfg(), 17);
  Rng rng(4);
  const obf::HpnnKey wrong = obf::HpnnKey::random(rng);
  ASSERT_NE(wrong, s.key);
  TrustedDevice good(s.key, s.schedule_seed);
  TrustedDevice bad(wrong, s.schedule_seed);
  good.load_model(s.artifact);
  bad.load_model(s.artifact);
  const Tensor x = Tensor::normal(Shape{8, 1, 16, 16}, rng, 0.0f, 0.25f);
  EXPECT_FALSE(good.infer(x).allclose(bad.infer(x), 1e-2f, 1e-2f));
}

TEST(DeviceTest, WrongScheduleSeedDiverges) {
  auto s = make_published(models::Architecture::kCnn1, cnn1_cfg(), 19);
  TrustedDevice good(s.key, s.schedule_seed);
  TrustedDevice bad(s.key, s.schedule_seed + 1);
  good.load_model(s.artifact);
  bad.load_model(s.artifact);
  Rng rng(5);
  const Tensor x = Tensor::normal(Shape{8, 1, 16, 16}, rng, 0.0f, 0.25f);
  EXPECT_FALSE(good.infer(x).allclose(bad.infer(x), 1e-2f, 1e-2f));
}

TEST(DeviceTest, KeyedMacsAreExercised) {
  auto s = make_published(models::Architecture::kCnn1, cnn1_cfg(), 23);
  TrustedDevice device(s.key, s.schedule_seed);
  device.load_model(s.artifact);
  Rng rng(6);
  (void)device.infer(Tensor::normal(Shape{1, 1, 16, 16}, rng, 0.0f, 0.25f));
  const auto& stats = device.mmu_stats();
  EXPECT_GT(stats.mac_ops, 0u);
  EXPECT_GT(stats.locked_outputs, 0u);  // the XOR key path actually ran
  EXPECT_GT(stats.cycles, 0u);
}

TEST(DeviceTest, StatsResetWorks) {
  auto s = make_published(models::Architecture::kCnn1, cnn1_cfg(), 29);
  TrustedDevice device(s.key, s.schedule_seed);
  device.load_model(s.artifact);
  Rng rng(7);
  (void)device.infer(Tensor::normal(Shape{1, 1, 16, 16}, rng));
  device.reset_stats();
  EXPECT_EQ(device.mmu_stats().mac_ops, 0u);
}

TEST(DeviceTest, ClassifyReturnsArgmax) {
  auto s = make_published(models::Architecture::kCnn1, cnn1_cfg(), 31);
  TrustedDevice device(s.key, s.schedule_seed);
  device.load_model(s.artifact);
  Rng rng(8);
  const Tensor x = Tensor::normal(Shape{4, 1, 16, 16}, rng, 0.0f, 0.25f);
  const Tensor logits = device.infer(x);
  const auto classes = device.classify(x);
  ASSERT_EQ(classes.size(), 4u);
  EXPECT_EQ(classes, ops::argmax_rows(logits));
}

TEST(DeviceTest, BitAccurateFidelityMatchesFast) {
  models::ModelConfig cfg = cnn1_cfg();
  cfg.image_size = 16;  // keep the gate-level run small
  auto s = make_published(models::Architecture::kCnn1, cfg, 37);
  TrustedDevice fast(s.key, s.schedule_seed, {Fidelity::kFast});
  TrustedDevice gates(s.key, s.schedule_seed, {Fidelity::kBitAccurate});
  fast.load_model(s.artifact);
  gates.load_model(s.artifact);
  Rng rng(9);
  const Tensor x = Tensor::normal(Shape{1, 1, 16, 16}, rng, 0.0f, 0.25f);
  EXPECT_TRUE(fast.infer(x).allclose(gates.infer(x), 0.0f, 0.0f));
}

TEST(DeviceTest, ExecutesCnn3Architecture) {
  models::ModelConfig cfg;
  cfg.in_channels = 3;
  cfg.image_size = 16;
  cfg.init_seed = 3;
  cfg.width_mult = 0.5;
  auto s = make_published(models::Architecture::kCnn3, cfg, 41);
  TrustedDevice device(s.key, s.schedule_seed);
  device.load_model(s.artifact);
  Rng rng(10);
  const Tensor x = Tensor::normal(Shape{2, 3, 16, 16}, rng, 0.0f, 0.25f);
  EXPECT_EQ(device.infer(x).shape(), Shape({2, 10}));
}

TEST(DeviceTest, ExecutesResNet18WithVectorUnitLocks) {
  models::ModelConfig cfg;
  cfg.in_channels = 3;
  cfg.image_size = 16;
  cfg.init_seed = 3;
  cfg.width_mult = 0.125;
  auto s = make_published(models::Architecture::kResNet18, cfg, 43);

  // Populate batch-norm running stats in the owner's model before
  // publishing (as real training would).
  Rng rng(11);
  s.owner_model->network().set_training(true);
  (void)s.owner_model->network().forward(
      Tensor::normal(Shape{8, 3, 16, 16}, rng, 0.0f, 0.25f));
  s.owner_model->network().set_training(false);
  std::stringstream ss;
  obf::publish_model(ss, *s.owner_model);
  s.artifact = obf::read_published_model(ss);

  TrustedDevice device(s.key, s.schedule_seed);
  device.load_model(s.artifact);
  const Tensor x = Tensor::normal(Shape{4, 3, 16, 16}, rng, 0.0f, 0.25f);
  const Tensor device_logits = device.infer(x);
  const Tensor float_logits = s.owner_model->network().forward(x);

  const auto dp = ops::argmax_rows(device_logits);
  const auto fp = ops::argmax_rows(float_logits);
  int agree = 0;
  for (std::size_t i = 0; i < dp.size(); ++i) {
    agree += (dp[i] == fp[i]);
  }
  EXPECT_GE(agree, 3);  // quantization noise tolerance on 4 samples
}

TEST(DeviceTest, BlockedSchedulePolicyRoundTrips) {
  // Owner trains with the blocked tiling policy; a device configured with
  // the same policy recovers the function, one with the default policy
  // does not.
  models::ModelConfig cfg = cnn1_cfg();
  Rng rng(81);
  const obf::HpnnKey key = obf::HpnnKey::random(rng);
  const std::uint64_t seed = 4242;
  obf::Scheduler blocked(seed, obf::SchedulePolicy::kBlocked);
  obf::LockedModel owner(models::Architecture::kCnn1, cfg, key, blocked);
  std::stringstream ss;
  obf::publish_model(ss, owner);
  const auto artifact = obf::read_published_model(ss);

  DeviceConfig match_cfg;
  match_cfg.schedule_policy = obf::SchedulePolicy::kBlocked;
  TrustedDevice matching(key, seed, match_cfg);
  TrustedDevice mismatched(key, seed);  // default: interleaved
  matching.load_model(artifact);
  mismatched.load_model(artifact);

  const Tensor x = Tensor::normal(Shape{8, 1, 16, 16}, rng, 0.0f, 0.25f);
  owner.network().set_training(false);
  const auto fp = ops::argmax_rows(owner.network().forward(x));
  const auto mp = matching.classify(x);
  int agree = 0;
  for (std::size_t i = 0; i < fp.size(); ++i) {
    agree += (mp[i] == fp[i]);
  }
  EXPECT_GE(agree, 6);
  EXPECT_FALSE(matching.infer(x).allclose(mismatched.infer(x), 1e-2f,
                                          1e-2f));
}

/// The device must execute every zoo architecture and agree with the float
/// locked model on most argmax predictions.
class DeviceArchTest
    : public ::testing::TestWithParam<models::Architecture> {};

TEST_P(DeviceArchTest, ExecutesAndTracksFloatModel) {
  const auto arch = GetParam();
  models::ModelConfig cfg;
  cfg.in_channels = arch == models::Architecture::kCnn1 ||
                            arch == models::Architecture::kMlp ||
                            arch == models::Architecture::kLeNet5
                        ? 1
                        : 3;
  cfg.image_size = 16;
  cfg.init_seed = 5;
  cfg.width_mult = arch == models::Architecture::kResNet18   ? 0.125
                   : arch == models::Architecture::kCnn2     ? 0.25
                   : arch == models::Architecture::kCnn3     ? 0.5
                                                             : 1.0;
  auto s = make_published(arch, cfg, 71);

  if (arch == models::Architecture::kResNet18) {
    // Populate batch-norm running stats before publishing.
    Rng rng(1);
    s.owner_model->network().set_training(true);
    (void)s.owner_model->network().forward(
        Tensor::normal(Shape{8, cfg.in_channels, 16, 16}, rng, 0.0f, 0.25f));
    s.owner_model->network().set_training(false);
    std::stringstream ss;
    obf::publish_model(ss, *s.owner_model);
    s.artifact = obf::read_published_model(ss);
  }

  TrustedDevice device(s.key, s.schedule_seed);
  device.load_model(s.artifact);
  Rng rng(2);
  const Tensor x =
      Tensor::normal(Shape{12, cfg.in_channels, 16, 16}, rng, 0.0f, 0.25f);
  const auto device_pred = device.classify(x);
  s.owner_model->network().set_training(false);
  const auto float_pred =
      ops::argmax_rows(s.owner_model->network().forward(x));
  int agree = 0;
  for (std::size_t i = 0; i < device_pred.size(); ++i) {
    agree += (device_pred[i] == float_pred[i]);
  }
  EXPECT_GE(agree, 9) << models::arch_name(arch)
                      << ": int8 device diverged from float model";
}

INSTANTIATE_TEST_SUITE_P(AllArchitectures, DeviceArchTest,
                         ::testing::ValuesIn(models::all_architectures()),
                         [](const auto& info) {
                           return models::arch_name(info.param);
                         });

}  // namespace
}  // namespace hpnn::hw
