#include "hw/secure_memory.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "hw/device.hpp"
#include "hw/fault.hpp"

namespace hpnn::hw {
namespace {

obf::HpnnKey some_key() {
  Rng rng(1);
  return obf::HpnnKey::random(rng);
}

TEST(SecureKeyStoreTest, StartsUnprovisioned) {
  SecureKeyStore store;
  EXPECT_FALSE(store.provisioned());
  EXPECT_FALSE(store.sealed());
  EXPECT_THROW(store.export_key(), KeyError);
  EXPECT_THROW(store.export_schedule_seed(), KeyError);
}

TEST(SecureKeyStoreTest, ProvisionThenExportBeforeSeal) {
  SecureKeyStore store;
  const auto key = some_key();
  store.provision(key, 99);
  EXPECT_TRUE(store.provisioned());
  EXPECT_EQ(store.export_key(), key);
  EXPECT_EQ(store.export_schedule_seed(), 99u);
}

TEST(SecureKeyStoreTest, ProvisionIsWriteOnce) {
  SecureKeyStore store;
  store.provision(some_key(), 1);
  EXPECT_THROW(store.provision(some_key(), 2), KeyError);
}

TEST(SecureKeyStoreTest, SealForbidsExport) {
  SecureKeyStore store;
  store.provision(some_key(), 7);
  store.seal();
  EXPECT_TRUE(store.sealed());
  EXPECT_THROW(store.export_key(), KeyError);
  EXPECT_THROW(store.export_schedule_seed(), KeyError);
}

TEST(SecureKeyStoreTest, ProvisionAfterSealThrows) {
  // Re-provisioning a sealed, provisioned store is the attack surface:
  // swapping the key after the device left the owner's hands.
  SecureKeyStore store;
  store.provision(some_key(), 3);
  store.seal();
  EXPECT_THROW(store.provision(some_key(), 4), KeyError);

  // Sealing an empty store must also close the provisioning port.
  SecureKeyStore empty;
  empty.seal();
  EXPECT_THROW(empty.provision(some_key(), 5), KeyError);
  EXPECT_FALSE(empty.provisioned());
}

TEST(SecureKeyStoreTest, IntegrityDigestTracksProvisioning) {
  SecureKeyStore unprovisioned;
  EXPECT_TRUE(unprovisioned.integrity_ok());  // nothing to protect yet
  unprovisioned.check_integrity();            // must not throw

  SecureKeyStore store;
  store.provision(some_key(), 13);
  store.seal();
  EXPECT_TRUE(store.integrity_ok());
  store.check_integrity();
}

TEST(SecureKeyStoreTest, IntegrityDigestDetectsTampering) {
  SecureKeyStore store;
  store.provision(some_key(), 21);
  store.seal();

  FaultPlan plan;
  plan.key_bits = {42};
  FaultInjector injector{plan};
  injector.apply_key_faults(store);  // flips a key word behind the digest

  EXPECT_FALSE(store.integrity_ok());
  EXPECT_THROW(store.check_integrity(), KeyError);
}

TEST(SecureKeyStoreTest, DeviceSealsOnConstruction) {
  TrustedDevice device(some_key(), 5);
  EXPECT_TRUE(device.key_store().provisioned());
  EXPECT_TRUE(device.key_store().sealed());
  EXPECT_THROW(device.key_store().export_key(), KeyError);
}

}  // namespace
}  // namespace hpnn::hw
