// Contract of the fault-injection subsystem: deterministic faults, zero
// effect without a plan, and every key SEU caught by the key-store
// integrity digest.
#include "hw/fault.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/error.hpp"
#include "hpnn/attestation.hpp"
#include "hpnn/owner.hpp"
#include "hw/secure_memory.hpp"

namespace hpnn::hw {
namespace {

struct PublishedSetup {
  obf::HpnnKey key;
  std::uint64_t schedule_seed = 4321;
  obf::PublishedModel artifact;
  std::unique_ptr<obf::LockedModel> owner_model;
};

PublishedSetup make_published(std::uint64_t key_seed) {
  PublishedSetup s;
  Rng rng(key_seed);
  s.key = obf::HpnnKey::random(rng);
  obf::Scheduler sched(s.schedule_seed);
  models::ModelConfig cfg;
  cfg.in_channels = 1;
  cfg.image_size = 16;
  cfg.init_seed = 7;
  s.owner_model = std::make_unique<obf::LockedModel>(
      models::Architecture::kCnn1, cfg, s.key, sched);
  std::stringstream ss;
  obf::publish_model(ss, *s.owner_model);
  s.artifact = obf::read_published_model(ss);
  return s;
}

Tensor probe_batch(std::uint64_t seed, std::int64_t n = 4) {
  Rng rng(seed);
  return Tensor::normal(Shape{n, 1, 16, 16}, rng, 0.0f, 0.25f);
}

TEST(FaultInjectorTest, RejectsMalformedPlans) {
  {
    FaultPlan plan;
    plan.key_bits = {obf::HpnnKey::kBits};  // one past the end
    EXPECT_THROW(FaultInjector{plan}, InvariantError);
  }
  {
    FaultPlan plan;
    plan.accumulator_flip_rate = 1.5;
    EXPECT_THROW(FaultInjector{plan}, InvariantError);
  }
  {
    FaultPlan plan;
    plan.accumulator_bit = 32;  // accumulators are 32-bit
    EXPECT_THROW(FaultInjector{plan}, InvariantError);
  }
}

TEST(FaultInjectorTest, EmptyPlanIsTransparent) {
  auto s = make_published(101);
  const Tensor x = probe_batch(1);

  TrustedDevice clean(s.key, s.schedule_seed);
  clean.load_model(s.artifact);
  const Tensor clean_logits = clean.infer(x);

  TrustedDevice faulted(s.key, s.schedule_seed);
  faulted.load_model(s.artifact);
  FaultInjector injector{FaultPlan{}};
  faulted.attach_fault_injector(&injector);
  const Tensor faulted_logits = faulted.infer(x);

  EXPECT_TRUE(clean_logits.allclose(faulted_logits, 0.0f, 0.0f));
  EXPECT_TRUE(faulted.key_store().integrity_ok());
  EXPECT_EQ(injector.stats().key_bits_flipped, 0u);
  EXPECT_EQ(injector.stats().accumulator_faults, 0u);
  EXPECT_EQ(injector.stats().scale_faults, 0u);
  EXPECT_GT(injector.stats().gemms_observed, 0u);  // hooks were wired
}

TEST(FaultInjectorTest, KeyBitFlipChangesLogitsAndIsDetected) {
  auto s = make_published(103);
  const Tensor x = probe_batch(2, 8);

  TrustedDevice clean(s.key, s.schedule_seed);
  clean.load_model(s.artifact);

  TrustedDevice faulted(s.key, s.schedule_seed);
  faulted.load_model(s.artifact);
  FaultPlan plan;
  plan.key_bits = {17};
  FaultInjector injector{plan};
  faulted.attach_fault_injector(&injector);

  EXPECT_FALSE(clean.infer(x).allclose(faulted.infer(x), 1e-2f, 1e-2f));
  EXPECT_EQ(injector.stats().key_bits_flipped, 1u);
  EXPECT_FALSE(faulted.key_store().integrity_ok());
  EXPECT_THROW(faulted.key_store().check_integrity(), KeyError);

  // self_test must fail fast on the corrupted store, before replaying the
  // challenge.
  Rng rng(7);
  const auto challenge = obf::make_challenge(*s.owner_model, 8, rng);
  EXPECT_THROW(faulted.self_test(challenge), KeyError);
}

TEST(FaultInjectorTest, LoadModelFailsFastAfterKeyCorruption) {
  auto s = make_published(107);
  TrustedDevice device(s.key, s.schedule_seed);
  FaultPlan plan;
  plan.key_bits = {0, 255};
  FaultInjector injector{plan};
  device.attach_fault_injector(&injector);
  EXPECT_EQ(injector.stats().key_bits_flipped, 2u);
  EXPECT_THROW(device.load_model(s.artifact), KeyError);
}

TEST(FaultInjectorTest, AccumulatorFaultsPerturbOutputsAndCount) {
  auto s = make_published(109);
  const Tensor x = probe_batch(3);

  TrustedDevice clean(s.key, s.schedule_seed);
  clean.load_model(s.artifact);

  TrustedDevice faulted(s.key, s.schedule_seed);
  faulted.load_model(s.artifact);
  FaultPlan plan;
  plan.accumulator_flip_rate = 1.0;  // every partial sum
  plan.accumulator_bit = 30;
  plan.seed = 5;
  FaultInjector injector{plan};
  faulted.attach_fault_injector(&injector);

  EXPECT_FALSE(clean.infer(x).allclose(faulted.infer(x), 1e-2f, 1e-2f));
  EXPECT_GT(injector.stats().accumulator_faults, 0u);
  // Transient datapath faults do not touch the sealed key words.
  EXPECT_TRUE(faulted.key_store().integrity_ok());
}

TEST(FaultInjectorTest, ArmAfterGemmsDelaysInjection) {
  auto s = make_published(113);
  const Tensor x = probe_batch(4);

  TrustedDevice clean(s.key, s.schedule_seed);
  clean.load_model(s.artifact);

  TrustedDevice faulted(s.key, s.schedule_seed);
  faulted.load_model(s.artifact);
  FaultPlan plan;
  plan.accumulator_flip_rate = 1.0;
  plan.arm_after_gemms = 1u << 30;  // never reached in this test
  FaultInjector injector{plan};
  faulted.attach_fault_injector(&injector);

  EXPECT_TRUE(clean.infer(x).allclose(faulted.infer(x), 0.0f, 0.0f));
  EXPECT_EQ(injector.stats().accumulator_faults, 0u);
  EXPECT_GT(injector.stats().gemms_observed, 0u);
}

TEST(FaultInjectorTest, ScaleCorruptionPerturbsOutputsAndCounts) {
  auto s = make_published(127);
  const Tensor x = probe_batch(5);

  TrustedDevice clean(s.key, s.schedule_seed);
  clean.load_model(s.artifact);

  TrustedDevice faulted(s.key, s.schedule_seed);
  faulted.load_model(s.artifact);
  FaultPlan plan;
  plan.scale_relative_error = 1.0;  // scale registers read back 2x
  FaultInjector injector{plan};
  faulted.attach_fault_injector(&injector);

  EXPECT_FALSE(clean.infer(x).allclose(faulted.infer(x), 1e-2f, 1e-2f));
  EXPECT_GT(injector.stats().scale_faults, 0u);
}

TEST(FaultInjectorTest, ScaleLayerFilterRestrictsCorruption) {
  FaultPlan plan;
  plan.scale_relative_error = 0.5;
  plan.scale_layers = {2};
  FaultInjector injector{plan};
  EXPECT_FLOAT_EQ(injector.corrupt_scale(1.0f, 0), 1.0f);
  EXPECT_FLOAT_EQ(injector.corrupt_scale(1.0f, 2), 1.5f);
  EXPECT_EQ(injector.stats().scale_faults, 1u);
}

TEST(FaultInjectorTest, SelfTestPassesOnHealthyDevice) {
  auto s = make_published(131);
  TrustedDevice device(s.key, s.schedule_seed);
  device.load_model(s.artifact);
  Rng rng(9);
  const auto challenge = obf::make_challenge(*s.owner_model, 32, rng);
  const auto result = device.self_test(challenge);
  EXPECT_TRUE(result.passed) << "agreement " << result.agreement;
}

TEST(FaultTrialTest, TrialsAreDeterministic) {
  auto s = make_published(137);
  const Tensor images = probe_batch(6, 12);
  const std::vector<std::int64_t> labels(12, 0);

  FaultPlan plan;
  plan.key_bits = {5, 200};
  plan.accumulator_flip_rate = 1e-3;
  plan.seed = 11;
  const auto a = run_fault_trial(s.key, s.schedule_seed, s.artifact, images,
                                 labels, plan);
  const auto b = run_fault_trial(s.key, s.schedule_seed, s.artifact, images,
                                 labels, plan);
  EXPECT_DOUBLE_EQ(a.accuracy, b.accuracy);
  EXPECT_EQ(a.integrity_detected, b.integrity_detected);
  EXPECT_TRUE(a.integrity_detected);
  EXPECT_EQ(a.stats.accumulator_faults, b.stats.accumulator_faults);
  EXPECT_EQ(a.stats.key_bits_flipped, 2u);
}

TEST(FaultTrialTest, KeyFlipCampaignShapeAndDetection) {
  auto s = make_published(139);
  const Tensor images = probe_batch(7, 8);
  const std::vector<std::int64_t> labels(8, 1);

  const auto points = run_key_flip_campaign(
      s.key, s.schedule_seed, s.artifact, images, labels, {0, 1},
      /*trials=*/2, /*campaign_seed=*/99);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].bits_flipped, 0u);
  EXPECT_EQ(points[0].detection_rate, 0.0);   // healthy devices
  EXPECT_DOUBLE_EQ(points[0].mean_served_accuracy, points[0].mean_accuracy);
  EXPECT_EQ(points[1].bits_flipped, 1u);
  EXPECT_EQ(points[1].detection_rate, 1.0);   // digest always catches SEUs
  // The detected corruption fails closed: served accuracy collapses.
  EXPECT_DOUBLE_EQ(points[1].mean_served_accuracy, 0.0);
  EXPECT_GE(points[0].mean_accuracy, points[0].min_accuracy);

  std::ostringstream json;
  write_campaign_json(json, "CNN1", points[0].mean_accuracy, points);
  const std::string text = json.str();
  EXPECT_NE(text.find("\"bench\":\"fault_campaign\""), std::string::npos);
  EXPECT_NE(text.find("\"key_bit_flips\""), std::string::npos);
  EXPECT_NE(text.find("\"bits\":1"), std::string::npos);
  EXPECT_NE(text.find("\"served_accuracy\":0"), std::string::npos);
}

}  // namespace
}  // namespace hpnn::hw
