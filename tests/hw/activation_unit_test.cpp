#include "hw/activation_unit.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/error.hpp"

namespace hpnn::hw {
namespace {

TEST(ActivationUnitTest, ReluIsExact) {
  ActivationUnit unit(obf::ActivationKind::kRelu);
  EXPECT_FLOAT_EQ(unit.apply(-3.5f), 0.0f);
  EXPECT_FLOAT_EQ(unit.apply(2.25f), 2.25f);
  EXPECT_FLOAT_EQ(unit.apply(0.0f), 0.0f);
  EXPECT_FLOAT_EQ(unit.max_error(), 0.0f);
}

class LutKindTest
    : public ::testing::TestWithParam<obf::ActivationKind> {};

TEST_P(LutKindTest, LutErrorBounded) {
  ActivationUnit unit(GetParam());
  // 256-entry piecewise-linear table over [-8, 8]: worst-case error for
  // smooth sigmoids is well under 1e-3.
  EXPECT_LT(unit.max_error(), 1e-3f);
}

TEST_P(LutKindTest, MonotoneNondecreasing) {
  ActivationUnit unit(GetParam());
  float prev = unit.apply(-10.0f);
  for (int i = -1000; i <= 1000; ++i) {
    const float x = static_cast<float>(i) * 0.01f;
    const float y = unit.apply(x);
    EXPECT_GE(y, prev - 1e-6f) << "at x=" << x;
    prev = y;
  }
}

TEST_P(LutKindTest, ClampsOutsideRange) {
  ActivationUnit unit(GetParam(), 4.0f);
  EXPECT_FLOAT_EQ(unit.apply(100.0f), unit.apply(4.0f));
  EXPECT_FLOAT_EQ(unit.apply(-100.0f), unit.apply(-4.0f));
}

INSTANTIATE_TEST_SUITE_P(Kinds, LutKindTest,
                         ::testing::Values(obf::ActivationKind::kSigmoid,
                                           obf::ActivationKind::kTanh),
                         [](const auto& info) {
                           return info.param ==
                                          obf::ActivationKind::kSigmoid
                                      ? "Sigmoid"
                                      : "Tanh";
                         });

TEST(ActivationUnitTest, SigmoidKnownValues) {
  ActivationUnit unit(obf::ActivationKind::kSigmoid);
  EXPECT_NEAR(unit.apply(0.0f), 0.5f, 1e-4f);
  EXPECT_NEAR(unit.apply(8.0f), 1.0f, 1e-3f);
  EXPECT_NEAR(unit.apply(-8.0f), 0.0f, 1e-3f);
}

TEST(ActivationUnitTest, TanhOddSymmetry) {
  ActivationUnit unit(obf::ActivationKind::kTanh);
  for (const float x : {0.3f, 1.7f, 3.9f}) {
    EXPECT_NEAR(unit.apply(x), -unit.apply(-x), 1e-4f);
  }
}

TEST(ActivationUnitTest, InvalidRangeThrows) {
  EXPECT_THROW(ActivationUnit(obf::ActivationKind::kSigmoid, 0.0f),
               InvariantError);
}

}  // namespace
}  // namespace hpnn::hw
