#include "hw/mmu.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/error.hpp"
#include "core/rng.hpp"

namespace hpnn::hw {
namespace {

std::vector<std::int8_t> random_i8(std::int64_t n, Rng& rng) {
  std::vector<std::int8_t> v(static_cast<std::size_t>(n));
  for (auto& x : v) {
    x = static_cast<std::int8_t>(
        static_cast<std::int32_t>(rng.uniform_index(255)) - 127);
  }
  return v;
}

std::vector<std::int32_t> naive_i8_matmul(const std::vector<std::int8_t>& a,
                                          std::int64_t m, std::int64_t k,
                                          const std::vector<std::int8_t>& w,
                                          std::int64_t n) {
  std::vector<std::int32_t> out(static_cast<std::size_t>(m * n), 0);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      std::int64_t s = 0;
      for (std::int64_t p = 0; p < k; ++p) {
        s += static_cast<std::int64_t>(a[i * k + p]) * w[p * n + j];
      }
      out[i * n + j] = static_cast<std::int32_t>(s);
    }
  }
  return out;
}

TEST(MmuTest, MatchesNaiveReference) {
  Rng rng(1);
  const std::int64_t m = 7, k = 13, n = 9;
  const auto a = random_i8(m * k, rng);
  const auto w = random_i8(k * n, rng);
  std::vector<std::int32_t> out(static_cast<std::size_t>(m * n));
  Mmu mmu;
  mmu.matmul_i8(a, m, k, w, n, {}, out);
  EXPECT_EQ(out, naive_i8_matmul(a, m, k, w, n));
}

TEST(MmuTest, NegateMaskFlipsSelectedOutputs) {
  Rng rng(2);
  const std::int64_t m = 4, k = 8, n = 6;
  const auto a = random_i8(m * k, rng);
  const auto w = random_i8(k * n, rng);
  std::vector<std::uint8_t> negate(static_cast<std::size_t>(m * n), 0);
  for (std::size_t i = 0; i < negate.size(); i += 3) {
    negate[i] = 1;
  }
  std::vector<std::int32_t> out(static_cast<std::size_t>(m * n));
  Mmu mmu;
  mmu.matmul_i8(a, m, k, w, n, negate, out);
  const auto ref = naive_i8_matmul(a, m, k, w, n);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], negate[i] ? -ref[i] : ref[i]);
  }
}

TEST(MmuTest, BitAccurateMatchesFast) {
  Rng rng(3);
  const std::int64_t m = 3, k = 5, n = 4;
  const auto a = random_i8(m * k, rng);
  const auto w = random_i8(k * n, rng);
  std::vector<std::uint8_t> negate(static_cast<std::size_t>(m * n), 0);
  negate[0] = negate[5] = negate[11] = 1;

  std::vector<std::int32_t> fast_out(static_cast<std::size_t>(m * n));
  std::vector<std::int32_t> gate_out(static_cast<std::size_t>(m * n));
  Mmu fast(Fidelity::kFast);
  Mmu gates(Fidelity::kBitAccurate);
  fast.matmul_i8(a, m, k, w, n, negate, fast_out);
  gates.matmul_i8(a, m, k, w, n, negate, gate_out);
  EXPECT_EQ(fast_out, gate_out);
}

TEST(MmuTest, StatsAccumulate) {
  Rng rng(4);
  const auto a = random_i8(2 * 3, rng);
  const auto w = random_i8(3 * 4, rng);
  std::vector<std::int32_t> out(8);
  Mmu mmu;
  mmu.matmul_i8(a, 2, 3, w, 4, {}, out);
  EXPECT_EQ(mmu.stats().mac_ops, 2u * 3u * 4u);
  EXPECT_EQ(mmu.stats().gemm_calls, 1u);
  EXPECT_EQ(mmu.stats().weight_tile_loads, 1u);  // fits one 256x256 tile
  EXPECT_GT(mmu.stats().cycles, 0u);
  mmu.reset_stats();
  EXPECT_EQ(mmu.stats().mac_ops, 0u);
}

TEST(MmuTest, TilingCountsMultipleTiles) {
  Rng rng(5);
  const std::int64_t m = 2, k = 300, n = 520;
  const auto a = random_i8(m * k, rng);
  const auto w = random_i8(k * n, rng);
  std::vector<std::int32_t> out(static_cast<std::size_t>(m * n));
  Mmu mmu;
  mmu.matmul_i8(a, m, k, w, n, {}, out);
  // ceil(300/256)=2 K-tiles x ceil(520/256)=3 N-tiles = 6 weight loads
  EXPECT_EQ(mmu.stats().weight_tile_loads, 6u);
  EXPECT_EQ(out, naive_i8_matmul(a, m, k, w, n));
}

TEST(MmuTest, LockedOutputCounter) {
  Rng rng(6);
  const auto a = random_i8(4, rng);
  const auto w = random_i8(4, rng);
  std::vector<std::uint8_t> negate{1, 0, 1, 0};
  std::vector<std::int32_t> out(4);
  Mmu mmu;
  mmu.matmul_i8(a, 2, 2, w, 2, negate, out);
  EXPECT_EQ(mmu.stats().locked_outputs, 2u);
}

TEST(MmuTest, UtilizationBounded) {
  Rng rng(7);
  const auto a = random_i8(64 * 64, rng);
  const auto w = random_i8(64 * 64, rng);
  std::vector<std::int32_t> out(64 * 64);
  Mmu mmu;
  mmu.matmul_i8(a, 64, 64, w, 64, {}, out);
  EXPECT_GT(mmu.stats().utilization(), 0.0);
  EXPECT_LE(mmu.stats().utilization(), 1.0);
}

TEST(MmuTest, SizeValidation) {
  Mmu mmu;
  std::vector<std::int8_t> a(6), w(6);
  std::vector<std::int32_t> out(4);
  EXPECT_THROW(mmu.matmul_i8(a, 2, 3, w, 3, {}, out), InvariantError);
  std::vector<std::int32_t> ok(6);
  EXPECT_THROW(mmu.matmul_i8(a, 0, 3, w, 2, {}, ok), InvariantError);
  std::vector<std::uint8_t> badmask(3);
  std::vector<std::int8_t> w2(6);
  EXPECT_THROW(mmu.matmul_i8(a, 2, 3, w2, 2, badmask, std::span(ok.data(), 4)),
               InvariantError);
}

}  // namespace
}  // namespace hpnn::hw
