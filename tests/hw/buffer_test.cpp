#include "hw/buffer.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace hpnn::hw {
namespace {

TEST(BufferTest, AllocFreeAccounting) {
  UnifiedBuffer buf(1000);
  buf.alloc("weights", 600);
  EXPECT_EQ(buf.in_use(), 600);
  buf.alloc("acts", 300);
  EXPECT_EQ(buf.in_use(), 900);
  EXPECT_EQ(buf.peak_usage(), 900);
  buf.free("weights");
  EXPECT_EQ(buf.in_use(), 300);
  EXPECT_EQ(buf.peak_usage(), 900);  // peak sticks
  EXPECT_TRUE(buf.has("acts"));
  EXPECT_FALSE(buf.has("weights"));
  EXPECT_EQ(buf.size_of("acts"), 300);
}

TEST(BufferTest, OverCapacityThrows) {
  UnifiedBuffer buf(100);
  buf.alloc("a", 80);
  EXPECT_THROW(buf.alloc("b", 21), InvariantError);
  EXPECT_NO_THROW(buf.alloc("b", 20));
}

TEST(BufferTest, DuplicateAndUnknownNames) {
  UnifiedBuffer buf(100);
  buf.alloc("a", 10);
  EXPECT_THROW(buf.alloc("a", 10), InvariantError);
  EXPECT_THROW(buf.free("ghost"), InvariantError);
  EXPECT_THROW(buf.size_of("ghost"), InvariantError);
  EXPECT_THROW(buf.record_read("ghost", 1), InvariantError);
}

TEST(BufferTest, TrafficCounters) {
  UnifiedBuffer buf(1000);
  buf.alloc("w", 100);
  buf.record_read("w", 400);   // streamed 4x
  buf.record_write("w", 100);
  EXPECT_EQ(buf.bytes_read(), 400u);
  EXPECT_EQ(buf.bytes_written(), 100u);
}

TEST(BufferTest, ResetClearsEverything) {
  UnifiedBuffer buf(1000);
  buf.alloc("a", 500);
  buf.record_read("a", 10);
  buf.reset();
  EXPECT_EQ(buf.in_use(), 0);
  EXPECT_EQ(buf.peak_usage(), 0);
  EXPECT_EQ(buf.bytes_read(), 0u);
  EXPECT_FALSE(buf.has("a"));
  EXPECT_NO_THROW(buf.alloc("a", 1000));
}

TEST(BufferTest, DefaultIsTpuSized) {
  UnifiedBuffer buf;
  EXPECT_EQ(buf.capacity(), 24ll << 20);
  EXPECT_THROW(UnifiedBuffer(0), InvariantError);
}

}  // namespace
}  // namespace hpnn::hw
