// Exception-recovery regressions for TrustedDevice:
//   - an inference that dies mid-batch (injected datapath fault, bad input)
//     must not leave the traversal cursors misaligned for the next request;
//   - load_model is strongly exception-safe: a corrupt artifact leaves the
//     previously loaded model (and its caches) serving bit-identically.
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "hpnn/calibration.hpp"
#include "hpnn/locked_model.hpp"
#include "hpnn/model_io.hpp"
#include "hw/device.hpp"
#include "hw/fault.hpp"

namespace hpnn::hw {
namespace {

struct Fixture {
  obf::HpnnKey key;
  std::uint64_t schedule_seed = 77;
  obf::PublishedModel artifact;
};

Fixture make_fixture(std::uint64_t model_seed, bool static_quant) {
  Fixture f;
  Rng rng(41);
  f.key = obf::HpnnKey::random(rng);
  obf::Scheduler sched(f.schedule_seed);
  models::ModelConfig mc;
  mc.in_channels = 1;
  mc.image_size = 16;
  mc.init_seed = model_seed;
  obf::LockedModel model(models::Architecture::kCnn1, mc, f.key, sched);

  std::vector<float> scales;
  if (static_quant) {
    Rng calib_rng(43);
    const Tensor calib =
        Tensor::normal(Shape{4, 1, 16, 16}, calib_rng, 0.0f, 0.5f);
    scales = obf::calibrate_activation_scales(model, calib);
  }
  std::stringstream ss;
  obf::publish_model(ss, model, scales);
  f.artifact = obf::read_published_model(ss);
  return f;
}

bool same_bits(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<std::size_t>(a.numel()) * sizeof(float)) == 0;
}

TEST(DeviceRecoveryTest, MidBatchFaultLeavesCursorsClean) {
  const Fixture f = make_fixture(/*model_seed=*/5, /*static_quant=*/true);
  Rng in_rng(19);
  const Tensor images = Tensor::normal(Shape{3, 1, 16, 16}, in_rng, 0.0f, 0.5f);

  TrustedDevice fresh(f.key, f.schedule_seed);
  fresh.load_model(f.artifact);
  const Tensor expected = fresh.infer(images);

  TrustedDevice device(f.key, f.schedule_seed);
  device.load_model(f.artifact);

  // Corrupt the second MAC layer's static-scale register to zero: the first
  // MAC quantizes fine (advancing the traversal cursors), then the second
  // trips the scale invariant and the inference unwinds mid-batch.
  FaultPlan plan;
  plan.scale_relative_error = -1.0;
  plan.scale_layers = {1};
  FaultInjector injector(plan);
  device.attach_fault_injector(&injector);
  EXPECT_THROW((void)device.infer(images), InvariantError);
  device.attach_fault_injector(nullptr);

  // The scope guard must have reset the cursors: the next inference starts
  // at activation/MAC index 0 and matches a never-faulted device exactly.
  const Tensor after = device.infer(images);
  EXPECT_TRUE(same_bits(expected, after));
}

TEST(DeviceRecoveryTest, BadInputShapeDoesNotPoisonNextRequest) {
  const Fixture f = make_fixture(/*model_seed=*/6, /*static_quant=*/false);
  Rng in_rng(23);
  const Tensor images = Tensor::normal(Shape{2, 1, 16, 16}, in_rng, 0.0f, 0.5f);
  const Tensor wrong = Tensor::normal(Shape{2, 1, 8, 8}, in_rng, 0.0f, 0.5f);

  TrustedDevice fresh(f.key, f.schedule_seed);
  fresh.load_model(f.artifact);
  const Tensor expected = fresh.infer(images);

  TrustedDevice device(f.key, f.schedule_seed);
  device.load_model(f.artifact);
  EXPECT_THROW((void)device.infer(wrong), ShapeError);
  EXPECT_TRUE(same_bits(expected, device.infer(images)));
}

TEST(DeviceRecoveryTest, LoadModelRejectsTamperedArtifactAndKeepsServing) {
  const Fixture good = make_fixture(/*model_seed=*/7, /*static_quant=*/false);
  Rng in_rng(29);
  const Tensor images = Tensor::normal(Shape{2, 1, 16, 16}, in_rng, 0.0f, 0.5f);

  TrustedDevice device(good.key, good.schedule_seed);
  device.load_model(good.artifact);
  const Tensor expected = device.infer(images);

  // In-memory tampering that survives parsing but must fail instantiation.
  {
    obf::PublishedModel bad = good.artifact;
    bad.parameters.at(0).name = "conv999.weight";
    EXPECT_THROW(device.load_model(bad), SerializationError);
  }
  {
    obf::PublishedModel bad = good.artifact;
    bad.parameters.pop_back();
    EXPECT_THROW(device.load_model(bad), SerializationError);
  }
  {
    obf::PublishedModel bad = good.artifact;
    bad.parameters.at(0).value = Tensor::zeros(Shape{1, 2, 3});
    EXPECT_THROW(device.load_model(bad), SerializationError);
  }

  // Strong exception safety: the device still serves the original model,
  // bit-identical to before the failed loads.
  EXPECT_TRUE(device.has_model());
  EXPECT_TRUE(same_bits(expected, device.infer(images)));
}

TEST(DeviceRecoveryTest, TruncationSweepNeverDisturbsLoadedModel) {
  const Fixture good = make_fixture(/*model_seed=*/8, /*static_quant=*/true);
  Rng in_rng(31);
  const Tensor images = Tensor::normal(Shape{2, 1, 16, 16}, in_rng, 0.0f, 0.5f);

  TrustedDevice device(good.key, good.schedule_seed);
  device.load_model(good.artifact);
  const Tensor expected = device.infer(images);

  // Re-serialize the artifact and sweep truncation points (same shape as
  // the artifact-fuzz sweep): every prefix must be rejected cleanly while
  // the device keeps its loaded model.
  obf::Scheduler sched(good.schedule_seed);
  std::stringstream full_ss;
  {
    auto locked = obf::instantiate_locked(good.artifact, good.key, sched);
    obf::publish_model(full_ss, *locked, good.artifact.activation_scales);
  }
  const std::string full = full_ss.str();
  for (std::size_t len = 0; len < full.size(); len += 256) {
    std::stringstream ss(full.substr(0, len));
    try {
      device.load_model(obf::read_published_model(ss));
      FAIL() << "truncation to " << len << " bytes loaded successfully";
    } catch (const SerializationError&) {
      // expected: parse or load rejected the prefix
    }
  }
  EXPECT_TRUE(same_bits(expected, device.infer(images)));
}

}  // namespace
}  // namespace hpnn::hw
