#include "hw/accumulator.hpp"

#include <gtest/gtest.h>

#include "core/rng.hpp"

namespace hpnn::hw {
namespace {

TEST(AccumulatorTest, KeyZeroComputesMac) {
  KeyedAccumulator acc(false);
  acc.accumulate(100);
  acc.accumulate(-30);
  EXPECT_EQ(acc.value(), 70);
}

TEST(AccumulatorTest, KeyOneComputesNegatedMac) {
  KeyedAccumulator acc(true);
  acc.accumulate(100);
  acc.accumulate(-30);
  EXPECT_EQ(acc.value(), -70);
}

TEST(AccumulatorTest, ResetClears) {
  KeyedAccumulator acc(false);
  acc.accumulate(5);
  acc.reset();
  EXPECT_EQ(acc.value(), 0);
}

class FidelityEquivalenceTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FidelityEquivalenceTest, FastMatchesBitAccurate) {
  // The fast integer path and the gate-level FA-chain path must agree on
  // arbitrary product streams, for both key values.
  Rng rng(GetParam());
  for (const bool key_bit : {false, true}) {
    KeyedAccumulator fast(key_bit, Fidelity::kFast);
    KeyedAccumulator gates(key_bit, Fidelity::kBitAccurate);
    for (int i = 0; i < 500; ++i) {
      const auto p = static_cast<std::int16_t>(rng() & 0xFFFF);
      fast.accumulate(p);
      gates.accumulate(p);
      ASSERT_EQ(fast.value(), gates.value())
          << "diverged at step " << i << " key=" << key_bit;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FidelityEquivalenceTest,
                         ::testing::Values(1u, 2u, 3u, 99u));

TEST(AccumulatorTest, OverflowWrapsIdentically) {
  // Saturating behaviour is NOT modeled: both paths wrap like the 32-bit
  // register. Verify wrap parity near the extremes.
  KeyedAccumulator fast(false, Fidelity::kFast);
  KeyedAccumulator gates(false, Fidelity::kBitAccurate);
  for (int i = 0; i < 70000; ++i) {
    fast.accumulate(32767);
    gates.accumulate(32767);
  }
  EXPECT_EQ(fast.value(), gates.value());
}

TEST(AccumulatorTest, MirrorPairProperty) {
  // A k=1 unit fed the same stream as a k=0 unit holds exactly the negated
  // value at every step (this is Eq. 1's L_j = -1 in hardware).
  Rng rng(7);
  KeyedAccumulator pos(false);
  KeyedAccumulator neg(true);
  for (int i = 0; i < 1000; ++i) {
    const auto p = static_cast<std::int16_t>(rng() & 0xFFFF);
    pos.accumulate(p);
    neg.accumulate(p);
    ASSERT_EQ(neg.value(), -pos.value());
  }
}

TEST(AccumulatorTest, ExposesConfiguration) {
  KeyedAccumulator acc(true, Fidelity::kBitAccurate);
  EXPECT_TRUE(acc.key_bit());
  EXPECT_EQ(acc.fidelity(), Fidelity::kBitAccurate);
  EXPECT_EQ(KeyedAccumulator::kWidth, 32);
}

}  // namespace
}  // namespace hpnn::hw
