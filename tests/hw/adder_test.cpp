#include "hw/adder.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "core/error.hpp"
#include "core/rng.hpp"

namespace hpnn::hw {
namespace {

TEST(FullAdderTest, ExhaustiveTruthTable) {
  struct Row {
    bool a, b, cin, sum, cout;
  };
  const Row rows[] = {
      {false, false, false, false, false}, {false, false, true, true, false},
      {false, true, false, true, false},   {false, true, true, false, true},
      {true, false, false, true, false},   {true, false, true, false, true},
      {true, true, false, false, true},    {true, true, true, true, true},
  };
  for (const auto& r : rows) {
    bool cout = false;
    EXPECT_EQ(full_adder(r.a, r.b, r.cin, cout), r.sum);
    EXPECT_EQ(cout, r.cout);
  }
}

TEST(RippleAddTest, MatchesNativeAddExhaustive8Bit) {
  for (std::uint64_t a = 0; a < 256; a += 7) {
    for (std::uint64_t b = 0; b < 256; b += 5) {
      EXPECT_EQ(ripple_add(a, b, false, 8), (a + b) & 0xFF);
      EXPECT_EQ(ripple_add(a, b, true, 8), (a + b + 1) & 0xFF);
    }
  }
}

TEST(RippleAddTest, Randomized32Bit) {
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t a = rng() & 0xFFFFFFFF;
    const std::uint64_t b = rng() & 0xFFFFFFFF;
    EXPECT_EQ(ripple_add(a, b, false, 32), (a + b) & 0xFFFFFFFF);
  }
}

TEST(RippleAddTest, WidthValidation) {
  EXPECT_THROW(ripple_add(0, 0, false, 0), InvariantError);
  EXPECT_THROW(ripple_add(0, 0, false, 65), InvariantError);
  EXPECT_NO_THROW(ripple_add(~0ULL, 1, false, 64));
}

TEST(KeyedAccumulateTest, KeyZeroAdds) {
  // k=0: acc + product.
  EXPECT_EQ(keyed_accumulate_bitlevel(100, 23, false, 32), 123u);
  EXPECT_EQ(keyed_accumulate_bitlevel(100, -23, false, 32), 77u);
}

TEST(KeyedAccumulateTest, KeyOneSubtracts) {
  // k=1: the XOR bank + carry-in computes acc - product (two's complement).
  EXPECT_EQ(keyed_accumulate_bitlevel(100, 23, true, 32), 77u);
  EXPECT_EQ(static_cast<std::int32_t>(
                keyed_accumulate_bitlevel(0, 23, true, 32)),
            -23);
  EXPECT_EQ(keyed_accumulate_bitlevel(100, -23, true, 32), 123u);
}

TEST(KeyedAccumulateTest, Int16ExtremesBothKeys) {
  // INT16_MIN's two's complement does not fit int16 — the 32-bit chain must
  // still produce +32768.
  EXPECT_EQ(static_cast<std::int32_t>(keyed_accumulate_bitlevel(
                0, std::numeric_limits<std::int16_t>::min(), true, 32)),
            32768);
  EXPECT_EQ(static_cast<std::int32_t>(keyed_accumulate_bitlevel(
                0, std::numeric_limits<std::int16_t>::max(), true, 32)),
            -32767);
  EXPECT_EQ(static_cast<std::int32_t>(keyed_accumulate_bitlevel(
                0, std::numeric_limits<std::int16_t>::min(), false, 32)),
            -32768);
}

TEST(KeyedAccumulateTest, ExhaustiveOverProductsSampled) {
  // Sweep the 16-bit product range (stride keeps runtime sane) against
  // native arithmetic for both key values and random accumulator states.
  Rng rng(2);
  for (std::int32_t p = -32768; p <= 32767; p += 97) {
    const auto product = static_cast<std::int16_t>(p);
    const auto acc = static_cast<std::uint32_t>(rng());
    const auto plus =
        keyed_accumulate_bitlevel(acc, product, false, 32);
    const auto minus =
        keyed_accumulate_bitlevel(acc, product, true, 32);
    EXPECT_EQ(plus, static_cast<std::uint32_t>(
                        acc + static_cast<std::uint32_t>(
                                  static_cast<std::int32_t>(product))));
    EXPECT_EQ(minus, static_cast<std::uint32_t>(
                         acc - static_cast<std::uint32_t>(
                                   static_cast<std::int32_t>(product))));
  }
}

TEST(KeyedAccumulateTest, SequenceComputesNegatedSum) {
  // Accumulating a stream through a k=1 unit yields exactly -Σ products.
  Rng rng(3);
  std::uint64_t acc = 0;
  std::int64_t expected = 0;
  for (int i = 0; i < 100; ++i) {
    const auto p = static_cast<std::int16_t>(rng() & 0xFFFF);
    acc = keyed_accumulate_bitlevel(acc, p, true, 32);
    expected -= p;
  }
  EXPECT_EQ(static_cast<std::int32_t>(acc),
            static_cast<std::int32_t>(expected));
}

TEST(KeyedAccumulateTest, WidthValidation) {
  EXPECT_THROW(keyed_accumulate_bitlevel(0, 1, false, 16), InvariantError);
  EXPECT_NO_THROW(keyed_accumulate_bitlevel(0, 1, false, 17));
}

TEST(KeyedAccumulateTest, XorGateCountIsSixteen) {
  // The paper's Fig. 4(b): one XOR per product bit.
  EXPECT_EQ(kXorGatesPerAccumulator, 16);
}

}  // namespace
}  // namespace hpnn::hw
