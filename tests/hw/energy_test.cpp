#include "hw/energy.hpp"

#include <gtest/gtest.h>

namespace hpnn::hw {
namespace {

MmuStats make_stats(std::uint64_t macs, std::uint64_t outputs,
                    std::uint64_t locked, std::uint64_t tiles) {
  MmuStats s;
  s.mac_ops = macs;
  s.outputs = outputs;
  s.locked_outputs = locked;
  s.weight_tile_loads = tiles;
  return s;
}

TEST(EnergyTest, ZeroStatsZeroEnergy) {
  const auto r = estimate_energy(MmuStats{});
  EXPECT_DOUBLE_EQ(r.total_pj(), 0.0);
  EXPECT_DOUBLE_EQ(r.locking_overhead(), 0.0);
}

TEST(EnergyTest, MacEnergyScalesLinearly) {
  const auto a = estimate_energy(make_stats(1000, 100, 0, 1));
  const auto b = estimate_energy(make_stats(2000, 100, 0, 1));
  EXPECT_DOUBLE_EQ(b.mac_pj, 2.0 * a.mac_pj);
}

TEST(EnergyTest, KnownValues) {
  EnergyModel m;
  const auto r = estimate_energy(make_stats(1000, 100, 0, 2), m);
  EXPECT_DOUBLE_EQ(r.mac_pj, 1000 * (m.mult_8b_pj + m.add_32b_pj));
  EXPECT_DOUBLE_EQ(r.weight_traffic_pj, 2.0 * 256 * 256 * m.sram_byte_pj);
  EXPECT_DOUBLE_EQ(r.locking_pj, 0.0);
}

TEST(EnergyTest, LockingEnergyProportionalToLockedFraction) {
  const auto half = estimate_energy(make_stats(1000, 100, 50, 1));
  const auto full = estimate_energy(make_stats(1000, 100, 100, 1));
  EXPECT_GT(half.locking_pj, 0.0);
  EXPECT_DOUBLE_EQ(full.locking_pj, 2.0 * half.locking_pj);
}

TEST(EnergyTest, LockingOverheadIsSmall) {
  // Even with every output locked, the XOR bank costs a few percent of the
  // MAC energy — the energy-side analogue of the paper's area claim.
  const auto r = estimate_energy(make_stats(1000000, 10000, 10000, 16));
  EXPECT_GT(r.locking_overhead(), 0.0);
  EXPECT_LT(r.locking_overhead(), 0.05);
}

}  // namespace
}  // namespace hpnn::hw
