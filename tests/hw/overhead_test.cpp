#include "hw/overhead.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace hpnn::hw {
namespace {

TEST(OverheadTest, TpuLikeXorCountIs4096) {
  // Sec. III-D3: 256 accumulators x 16 XOR gates = 4096 gates.
  const auto report = mmu_overhead(256);
  EXPECT_EQ(report.accumulator_units, 256);
  EXPECT_EQ(report.xor_gates_added, 4096);
}

TEST(OverheadTest, ZeroCycleOverhead) {
  EXPECT_EQ(mmu_overhead(256).cycle_overhead, 0);
}

TEST(OverheadTest, ReferenceMmuOverheadBelowHalfPercent) {
  // The paper's headline: < 0.5% against a ~1e6-gate MMU [16].
  const auto report = mmu_overhead(256);
  EXPECT_LT(report.overhead_vs_reference(1000000), 0.005);
  EXPECT_GT(report.overhead_vs_reference(1000000), 0.0);
}

TEST(OverheadTest, FullArrayOverheadIsTiny) {
  const auto report = mmu_overhead(256);
  EXPECT_GT(report.baseline_gates, 1000000);  // 256x256 MACs >> 1e6 gates
  EXPECT_LT(report.overhead_vs_full_array(), 0.0005);
}

TEST(OverheadTest, ScalesWithArrayDim) {
  const auto small = mmu_overhead(16);
  const auto big = mmu_overhead(256);
  EXPECT_EQ(small.xor_gates_added, 16 * 16);
  EXPECT_LT(small.baseline_gates, big.baseline_gates);
  EXPECT_EQ(small.mac_count, 256);
}

TEST(OverheadTest, GateModelKnobs) {
  GateModel model;
  model.gates_per_xor = 2;  // e.g. a different cell library
  const auto report = mmu_overhead(256, model);
  EXPECT_EQ(report.xor_gates_added, 8192);
}

TEST(OverheadTest, Validation) {
  EXPECT_THROW(mmu_overhead(0), InvariantError);
  EXPECT_THROW(mmu_overhead(256).overhead_vs_reference(0), InvariantError);
}

TEST(OverheadTest, ReportToStringMentionsKeyNumbers) {
  const auto report = mmu_overhead(256);
  const std::string s = report.to_string();
  EXPECT_NE(s.find("4096"), std::string::npos);
  EXPECT_NE(s.find("+0 cycles"), std::string::npos);
}

}  // namespace
}  // namespace hpnn::hw
