#include "hw/systolic.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "hw/mmu.hpp"

namespace hpnn::hw {
namespace {

std::vector<std::int8_t> random_i8(std::int64_t n, Rng& rng) {
  std::vector<std::int8_t> v(static_cast<std::size_t>(n));
  for (auto& x : v) {
    x = static_cast<std::int8_t>(
        static_cast<std::int32_t>(rng.uniform_index(255)) - 127);
  }
  return v;
}

std::vector<std::int32_t> naive(const std::vector<std::int8_t>& a,
                                std::int64_t m, std::int64_t k,
                                const std::vector<std::int8_t>& w,
                                std::int64_t n) {
  std::vector<std::int32_t> out(static_cast<std::size_t>(m * n), 0);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      std::int32_t s = 0;
      for (std::int64_t p = 0; p < k; ++p) {
        s += static_cast<std::int32_t>(a[i * k + p]) * w[p * n + j];
      }
      out[i * n + j] = s;
    }
  }
  return out;
}

TEST(SystolicTest, SingleElementArray) {
  SystolicArray arr(1, 1);
  const std::vector<std::int8_t> w{3};
  const std::vector<std::int8_t> a{5, -7};
  arr.load_weights(w, 1, 1);
  const auto result = arr.run(a, 2);
  EXPECT_EQ(result.out, (std::vector<std::int32_t>{15, -21}));
  EXPECT_EQ(result.load_cycles, 1u);
  EXPECT_EQ(result.stream_cycles, 2u);  // m + k + n - 2 = 2
}

struct GridCase {
  std::int64_t m, k, n;
};

class SystolicParamTest : public ::testing::TestWithParam<GridCase> {};

TEST_P(SystolicParamTest, DataflowMatchesGemm) {
  const auto& p = GetParam();
  Rng rng(11 + p.m + p.k * 3 + p.n * 7);
  const auto a = random_i8(p.m * p.k, rng);
  const auto w = random_i8(p.k * p.n, rng);
  SystolicArray arr(p.k, p.n);
  arr.load_weights(w, p.k, p.n);
  const auto result = arr.run(a, p.m);
  EXPECT_EQ(result.out, naive(a, p.m, p.k, w, p.n));
  // Exact pipeline latency of a skewed weight-stationary array.
  EXPECT_EQ(result.stream_cycles,
            static_cast<std::uint64_t>(p.m + p.k + p.n - 2));
}

INSTANTIATE_TEST_SUITE_P(Grids, SystolicParamTest,
                         ::testing::Values(GridCase{1, 1, 1},
                                           GridCase{4, 3, 5},
                                           GridCase{7, 8, 2},
                                           GridCase{16, 16, 16},
                                           GridCase{3, 32, 9},
                                           GridCase{32, 5, 24}));

TEST(SystolicTest, ColumnKeyBitsNegateColumns) {
  Rng rng(5);
  const std::int64_t m = 6, k = 4, n = 5;
  const auto a = random_i8(m * k, rng);
  const auto w = random_i8(k * n, rng);
  std::vector<std::uint8_t> keys{1, 0, 1, 0, 1};
  SystolicArray arr(k, n);
  arr.load_weights(w, k, n);
  const auto locked = arr.run(a, m, keys);
  arr.load_weights(w, k, n);
  const auto plain = arr.run(a, m);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      const std::int32_t expect =
          keys[static_cast<std::size_t>(j)] ? -plain.out[i * n + j]
                                            : plain.out[i * n + j];
      EXPECT_EQ(locked.out[i * n + j], expect);
    }
  }
  // The key path adds zero cycles.
  EXPECT_EQ(locked.stream_cycles, plain.stream_cycles);
}

TEST(SystolicTest, SmallerTileInLargerArray) {
  Rng rng(6);
  const std::int64_t m = 4, k = 3, n = 2;
  const auto a = random_i8(m * k, rng);
  const auto w = random_i8(k * n, rng);
  SystolicArray arr(8, 8);  // partially used grid
  arr.load_weights(w, k, n);
  const auto result = arr.run(a, m);
  EXPECT_EQ(result.out, naive(a, m, k, w, n));
}

TEST(SystolicTest, MatchesMmuFunctionalResults) {
  Rng rng(7);
  const std::int64_t m = 9, k = 12, n = 10;
  const auto a = random_i8(m * k, rng);
  const auto w = random_i8(k * n, rng);
  SystolicArray arr(k, n);
  arr.load_weights(w, k, n);
  const auto sim = arr.run(a, m);

  std::vector<std::int32_t> mmu_out(static_cast<std::size_t>(m * n));
  Mmu mmu;
  mmu.matmul_i8(a, m, k, w, n, {}, mmu_out);
  EXPECT_EQ(sim.out, mmu_out);
}

TEST(SystolicTest, CycleModelMatchesClosedForm) {
  // The simulated latency must equal the closed-form model the Mmu charges
  // per tile: load (k) + fill/stream/drain (m + k + n - 2). This is the
  // validation of Mmu's cycle formula by actual dataflow simulation.
  Rng rng(8);
  const std::int64_t m = 20, k = 16, n = 16;
  const auto a = random_i8(m * k, rng);
  const auto w = random_i8(k * n, rng);
  SystolicArray arr(k, n);
  arr.load_weights(w, k, n);
  const auto sim = arr.run(a, m);
  EXPECT_EQ(sim.load_cycles, static_cast<std::uint64_t>(k));
  EXPECT_EQ(sim.stream_cycles, static_cast<std::uint64_t>(m + k + n - 2));
  EXPECT_EQ(sim.total_cycles(),
            static_cast<std::uint64_t>(k + m + k + n - 2));
}

TEST(SystolicTest, WeightReloadCharged) {
  Rng rng(9);
  const auto a = random_i8(2 * 2, rng);
  const auto w = random_i8(2 * 2, rng);
  SystolicArray arr(2, 2);
  arr.load_weights(w, 2, 2);
  EXPECT_EQ(arr.run(a, 2).load_cycles, 2u);
  // Second run without reload: weights stay parked, no load cost.
  EXPECT_EQ(arr.run(a, 2).load_cycles, 0u);
}

TEST(SystolicTest, Validation) {
  SystolicArray arr(4, 4);
  std::vector<std::int8_t> w(16, 1);
  EXPECT_THROW(arr.load_weights(w, 5, 4), InvariantError);   // too tall
  EXPECT_THROW(arr.load_weights(w, 4, 3), InvariantError);   // size mismatch
  std::vector<std::int8_t> a(8, 1);
  EXPECT_THROW(arr.run(a, 2), InvariantError);  // run before load
  arr.load_weights(w, 4, 4);
  EXPECT_THROW(arr.run(a, 3), InvariantError);  // activation size mismatch
  std::vector<std::uint8_t> bad_keys(3, 0);
  std::vector<std::int8_t> a16(16, 1);
  EXPECT_THROW(arr.run(a16, 4, bad_keys), InvariantError);
  EXPECT_THROW(SystolicArray(0, 4), InvariantError);
}

}  // namespace
}  // namespace hpnn::hw
