// Bit-exactness of the threaded kernels across pool sizes: the same inputs
// must produce byte-identical outputs at 1 and 8 threads (the programmatic
// equivalent of running under HPNN_THREADS=1 vs HPNN_THREADS=8), and
// training must follow the exact same loss trajectory.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "core/threadpool.hpp"
#include "nn/batchnorm.hpp"
#include "nn/gradcheck.hpp"
#include "nn/layers.hpp"
#include "nn/trainer.hpp"
#include "tensor/ops.hpp"

namespace hpnn {
namespace {

class DeterminismTest : public ::testing::Test {
 protected:
  void TearDown() override { core::set_thread_count(0); }
};

::testing::AssertionResult bits_equal(const Tensor& a, const Tensor& b) {
  if (!(a.shape() == b.shape())) {
    return ::testing::AssertionFailure()
           << "shape " << a.shape().to_string() << " vs "
           << b.shape().to_string();
  }
  if (std::memcmp(a.data(), b.data(),
                  static_cast<std::size_t>(a.numel()) * sizeof(float)) != 0) {
    for (std::int64_t i = 0; i < a.numel(); ++i) {
      if (a.at(i) != b.at(i)) {
        return ::testing::AssertionFailure()
               << "first mismatch at flat index " << i << ": " << a.at(i)
               << " vs " << b.at(i);
      }
    }
    return ::testing::AssertionFailure() << "NaN-only bit difference";
  }
  return ::testing::AssertionSuccess();
}

TEST_F(DeterminismTest, GemmBitIdenticalAcrossThreadCounts) {
  Rng rng(11);
  // Large enough to clear the kernel's serial-work threshold.
  const Tensor a = Tensor::normal(Shape{96, 64}, rng);
  const Tensor b = Tensor::normal(Shape{64, 80}, rng);
  core::set_thread_count(1);
  const Tensor serial = ops::matmul(a, b);
  core::set_thread_count(8);
  const Tensor parallel = ops::matmul(a, b);
  EXPECT_TRUE(bits_equal(serial, parallel));

  // Transposed operands and accumulating beta take the same row kernel.
  const Tensor bt = Tensor::normal(Shape{96, 80}, rng);  // op(a)^T @ bt
  Tensor c1(Shape{64, 80}, 0.5f);
  Tensor c8 = c1;
  core::set_thread_count(1);
  ops::gemm(a, ops::Trans::kYes, bt, ops::Trans::kNo, c1, 2.0f, 1.0f);
  core::set_thread_count(8);
  ops::gemm(a, ops::Trans::kYes, bt, ops::Trans::kNo, c8, 2.0f, 1.0f);
  EXPECT_TRUE(bits_equal(c1, c8));
}

TEST_F(DeterminismTest, Conv2dForwardBitIdenticalAcrossThreadCounts) {
  Rng rng(12);
  const ops::Conv2dGeometry g{3, 12, 12, 3, 1, 1};
  const Tensor x = Tensor::normal(Shape{4, 3, 12, 12}, rng);
  const Tensor w = Tensor::normal(Shape{8, 3, 3, 3}, rng);
  const Tensor b = Tensor::normal(Shape{8}, rng);
  core::set_thread_count(1);
  const Tensor serial = ops::conv2d_forward(x, w, b, g);
  core::set_thread_count(8);
  const Tensor parallel = ops::conv2d_forward(x, w, b, g);
  EXPECT_TRUE(bits_equal(serial, parallel));
}

TEST_F(DeterminismTest, Conv2dBackwardBitIdenticalAcrossThreadCounts) {
  Rng rng(13);
  const ops::Conv2dGeometry g{3, 12, 12, 3, 1, 1};
  const Tensor x = Tensor::normal(Shape{5, 3, 12, 12}, rng);
  const Tensor w = Tensor::normal(Shape{8, 3, 3, 3}, rng);
  const Tensor gout = Tensor::normal(Shape{5, 8, 12, 12}, rng);

  auto run = [&] {
    Tensor gw(w.shape());
    Tensor gb(Shape{8});
    Tensor gx = ops::conv2d_backward(x, w, gout, g, gw, gb);
    return std::make_tuple(std::move(gx), std::move(gw), std::move(gb));
  };
  core::set_thread_count(1);
  auto [gx1, gw1, gb1] = run();
  core::set_thread_count(8);
  auto [gx8, gw8, gb8] = run();
  EXPECT_TRUE(bits_equal(gx1, gx8));
  EXPECT_TRUE(bits_equal(gw1, gw8));
  EXPECT_TRUE(bits_equal(gb1, gb8));
}

TEST_F(DeterminismTest, PoolingAndSoftmaxBitIdenticalAcrossThreadCounts) {
  Rng rng(14);
  const Tensor x = Tensor::normal(Shape{4, 6, 16, 16}, rng);
  const Tensor logits = Tensor::normal(Shape{512, 10}, rng);
  auto run = [&] {
    auto mp = ops::maxpool2d_forward(x, 2, 2);
    Tensor mp_grad = ops::maxpool2d_backward(mp.output, x.shape(), mp.argmax);
    Tensor ap = ops::avgpool2d_forward(x, 2, 2);
    Tensor gap = ops::global_avgpool_forward(x);
    Tensor sm = ops::softmax_rows(logits);
    Tensor lsm = ops::log_softmax_rows(logits);
    return std::make_tuple(std::move(mp.output), std::move(mp_grad),
                           std::move(ap), std::move(gap), std::move(sm),
                           std::move(lsm));
  };
  core::set_thread_count(1);
  auto r1 = run();
  core::set_thread_count(8);
  auto r8 = run();
  EXPECT_TRUE(bits_equal(std::get<0>(r1), std::get<0>(r8)));
  EXPECT_TRUE(bits_equal(std::get<1>(r1), std::get<1>(r8)));
  EXPECT_TRUE(bits_equal(std::get<2>(r1), std::get<2>(r8)));
  EXPECT_TRUE(bits_equal(std::get<3>(r1), std::get<3>(r8)));
  EXPECT_TRUE(bits_equal(std::get<4>(r1), std::get<4>(r8)));
  EXPECT_TRUE(bits_equal(std::get<5>(r1), std::get<5>(r8)));
}

TEST_F(DeterminismTest, BatchNormBitIdenticalAcrossThreadCounts) {
  Rng rng(15);
  const Tensor x = Tensor::normal(Shape{4, 8, 32, 32}, rng);
  auto run = [&](bool training) {
    nn::BatchNorm2d bn(8, "bn");
    bn.set_training(training);
    Tensor y = bn.forward(x);
    Tensor eval_y = bn.eval_forward(x);
    return std::make_pair(std::move(y), std::move(eval_y));
  };
  core::set_thread_count(1);
  auto train1 = run(true);
  auto eval1 = run(false);
  core::set_thread_count(8);
  auto train8 = run(true);
  auto eval8 = run(false);
  EXPECT_TRUE(bits_equal(train1.first, train8.first));
  EXPECT_TRUE(bits_equal(train1.second, train8.second));
  EXPECT_TRUE(bits_equal(eval1.first, eval8.first));
  EXPECT_TRUE(bits_equal(eval1.second, eval8.second));
}

TEST_F(DeterminismTest, FitLossCurveIdenticalAcrossThreadCounts) {
  auto train = [] {
    Rng rng(16);
    Tensor x(Shape{64, 2});
    std::vector<std::int64_t> labels(64);
    for (std::int64_t i = 0; i < 64; ++i) {
      const std::int64_t cls = i % 2;
      x.at(i, 0) = (cls == 0 ? -1.0f : 1.0f) +
                   static_cast<float>(rng.normal(0.0, 0.3));
      x.at(i, 1) = static_cast<float>(rng.normal(0.0, 0.3));
      labels[static_cast<std::size_t>(i)] = cls;
    }
    nn::Sequential net;
    net.add(std::make_unique<nn::Linear>(2, 16, rng, "fc1"));
    net.add(std::make_unique<nn::ReLU>("r"));
    net.add(std::make_unique<nn::Linear>(16, 2, rng, "fc2"));
    nn::SoftmaxCrossEntropy loss;
    nn::Sgd opt(nn::parameters_of(net), {.lr = 0.05, .momentum = 0.9});
    nn::TrainConfig cfg;
    cfg.epochs = 5;
    cfg.batch_size = 16;
    cfg.shuffle_seed = 42;
    return nn::fit(net, loss, opt, x, labels, cfg).epoch_loss;
  };
  core::set_thread_count(1);
  const auto serial = train();
  core::set_thread_count(8);
  const auto parallel = train();
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t e = 0; e < serial.size(); ++e) {
    EXPECT_EQ(serial[e], parallel[e]) << "epoch " << e;
  }
}

TEST_F(DeterminismTest, GradcheckPassesUnderThePool) {
  core::set_thread_count(4);
  Rng rng(17);
  nn::Sequential net;
  net.add(std::make_unique<nn::Conv2d>(ops::Conv2dGeometry{2, 8, 8, 3, 1, 1},
                                       4, rng, "c1"));
  net.add(std::make_unique<nn::ReLU>("r1"));
  net.add(std::make_unique<nn::MaxPool2d>(2, 2, "p1"));
  net.add(std::make_unique<nn::Flatten>());
  net.add(std::make_unique<nn::Linear>(4 * 4 * 4, 3, rng, "fc"));
  nn::SoftmaxCrossEntropy loss;
  const Tensor x = Tensor::normal(Shape{3, 2, 8, 8}, rng);
  std::vector<std::int64_t> labels(3);
  for (std::int64_t i = 0; i < 3; ++i) {
    labels[static_cast<std::size_t>(i)] = i % 3;
  }
  const auto in_res = nn::check_input_gradient(net, loss, x, labels);
  EXPECT_TRUE(in_res.ok) << "rel err " << in_res.max_rel_err;
  const auto par_res = nn::check_parameter_gradients(net, loss, x, labels);
  EXPECT_TRUE(par_res.ok) << "rel err " << par_res.max_rel_err;
}

}  // namespace
}  // namespace hpnn
