// Unit tests of the deterministic thread-pool primitive itself: static
// chunking, coverage, nesting, exception propagation, reconfiguration.
#include "core/threadpool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/error.hpp"

namespace hpnn::core {
namespace {

/// Restores the pool to its environment-default size after each test so a
/// reconfiguration cannot leak into other suites in this binary.
class ThreadPoolTest : public ::testing::Test {
 protected:
  void TearDown() override { set_thread_count(0); }
};

TEST_F(ThreadPoolTest, ChunkCountIsPureFunctionOfRange) {
  EXPECT_EQ(ThreadPool::chunk_count(0, 10, 3), 4);
  EXPECT_EQ(ThreadPool::chunk_count(0, 9, 3), 3);
  EXPECT_EQ(ThreadPool::chunk_count(5, 5, 1), 0);
  EXPECT_EQ(ThreadPool::chunk_count(7, 3, 1), 0);  // inverted range is empty
  EXPECT_EQ(ThreadPool::chunk_count(0, 1, 1000), 1);
  // The count must not depend on the pool size.
  set_thread_count(4);
  EXPECT_EQ(ThreadPool::chunk_count(0, 10, 3), 4);
}

TEST_F(ThreadPoolTest, InvalidGrainThrows) {
  EXPECT_THROW(ThreadPool::chunk_count(0, 10, 0), InvariantError);
  EXPECT_THROW(parallel_for(0, 10, -1, [](std::int64_t, std::int64_t) {}),
               InvariantError);
}

TEST_F(ThreadPoolTest, EmptyRangeRunsNothing) {
  std::atomic<int> calls{0};
  parallel_for(3, 3, 1, [&](std::int64_t, std::int64_t) { ++calls; });
  parallel_for(5, 2, 1, [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST_F(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  for (const int threads : {1, 4}) {
    set_thread_count(threads);
    constexpr std::int64_t kN = 1037;
    std::vector<std::atomic<int>> hits(kN);
    parallel_for(0, kN, 16, [&](std::int64_t b, std::int64_t e) {
      for (std::int64_t i = b; i < e; ++i) {
        ++hits[static_cast<std::size_t>(i)];
      }
    });
    for (std::int64_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
          << "index " << i << " at " << threads << " threads";
    }
  }
}

TEST_F(ThreadPoolTest, ChunkIndexMatchesStaticDecomposition) {
  set_thread_count(4);
  constexpr std::int64_t kBegin = 5;
  constexpr std::int64_t kEnd = 43;
  constexpr std::int64_t kGrain = 7;
  const std::int64_t chunks = ThreadPool::chunk_count(kBegin, kEnd, kGrain);
  std::vector<std::atomic<int>> seen(static_cast<std::size_t>(chunks));
  parallel_for(kBegin, kEnd, kGrain,
               [&](std::int64_t b, std::int64_t e, std::int64_t chunk) {
                 EXPECT_EQ(b, kBegin + chunk * kGrain);
                 EXPECT_EQ(e, std::min<std::int64_t>(kEnd, b + kGrain));
                 ++seen[static_cast<std::size_t>(chunk)];
               });
  for (std::int64_t c = 0; c < chunks; ++c) {
    EXPECT_EQ(seen[static_cast<std::size_t>(c)].load(), 1);
  }
}

TEST_F(ThreadPoolTest, NestedParallelForRunsInline) {
  set_thread_count(4);
  constexpr std::int64_t kOuter = 16;
  constexpr std::int64_t kInner = 32;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  parallel_for(0, kOuter, 1, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t o = b; o < e; ++o) {
      parallel_for(0, kInner, 4, [&](std::int64_t ib, std::int64_t ie) {
        for (std::int64_t i = ib; i < ie; ++i) {
          ++hits[static_cast<std::size_t>(o * kInner + i)];
        }
      });
    }
  });
  for (const auto& h : hits) {
    ASSERT_EQ(h.load(), 1);
  }
}

TEST_F(ThreadPoolTest, ExceptionPropagatesAndPoolSurvives) {
  set_thread_count(4);
  EXPECT_THROW(
      parallel_for(0, 64, 1,
                   [&](std::int64_t b, std::int64_t) {
                     if (b == 17) {
                       throw std::runtime_error("chunk failure");
                     }
                   }),
      std::runtime_error);
  // The pool must still execute work after a failed job.
  std::atomic<std::int64_t> sum{0};
  parallel_for(0, 100, 8, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) {
      sum += i;
    }
  });
  EXPECT_EQ(sum.load(), 99 * 100 / 2);
}

TEST_F(ThreadPoolTest, SetThreadCountReconfigures) {
  set_thread_count(3);
  EXPECT_EQ(thread_count(), 3);
  set_thread_count(1);
  EXPECT_EQ(thread_count(), 1);
  set_thread_count(0);  // back to the environment default
  EXPECT_GE(thread_count(), 1);
}

TEST_F(ThreadPoolTest, ChunkOrderedReductionIsThreadCountInvariant) {
  // The canonical deterministic-reduction recipe: per-chunk partials
  // reduced in chunk-index order. The result bits must not change with the
  // pool size.
  auto reduce_at = [](int threads) {
    set_thread_count(threads);
    constexpr std::int64_t kN = 4096;
    constexpr std::int64_t kGrain = 128;
    std::vector<float> values(kN);
    for (std::int64_t i = 0; i < kN; ++i) {
      values[static_cast<std::size_t>(i)] =
          1.0f / static_cast<float>(i + 1);  // non-associative workload
    }
    const std::int64_t chunks = ThreadPool::chunk_count(0, kN, kGrain);
    std::vector<float> partial(static_cast<std::size_t>(chunks), 0.0f);
    parallel_for(0, kN, kGrain,
                 [&](std::int64_t b, std::int64_t e, std::int64_t chunk) {
                   float s = 0.0f;
                   for (std::int64_t i = b; i < e; ++i) {
                     s += values[static_cast<std::size_t>(i)];
                   }
                   partial[static_cast<std::size_t>(chunk)] = s;
                 });
    float total = 0.0f;
    for (const float p : partial) {
      total += p;
    }
    return total;
  };
  const float serial = reduce_at(1);
  EXPECT_EQ(serial, reduce_at(2));
  EXPECT_EQ(serial, reduce_at(4));
  EXPECT_EQ(serial, reduce_at(8));
}

}  // namespace
}  // namespace hpnn::core
