// Concurrency contract of the serving supervisor: 8 threads hammer one
// supervisor while a sealed-key SEU lands mid-run. Run under TSan via the
// `threading` ctest label. Success criteria: no data race (TSan), zero
// wrong answers, and a pool whose books balance after the final
// maintenance pump.
#include <gtest/gtest.h>

#include <atomic>
#include <latch>
#include <memory>
#include <thread>
#include <vector>

#include "core/error.hpp"
#include "hw/fault.hpp"
#include "hpnn/keychain.hpp"
#include "serve/chaos.hpp"
#include "serve/supervisor.hpp"

namespace hpnn::serve {
namespace {

TEST(ServeConcurrencyTest, EightThreadsWithMidRunSeuServeNoWrongAnswers) {
  constexpr int kThreads = 8;
  constexpr int kRequestsPerThread = 4;

  const ChaosModelBundle bundle = make_chaos_model(33);
  SimulatedClock clock(0);
  SupervisorConfig config;
  config.replicas = 4;
  config.clock = &clock;
  ServingSupervisor supervisor(bundle.master, bundle.model_id,
                               bundle.artifact, bundle.challenge, config);

  // Precompute per-thread inputs and reference answers serially (the
  // reference device itself is not a shared-state participant).
  hw::TrustedDevice reference(
      obf::derive_model_key(bundle.master, bundle.model_id),
      obf::derive_schedule_seed(bundle.master, bundle.model_id),
      config.device);
  reference.load_model(bundle.artifact);
  std::vector<Tensor> inputs;
  std::vector<std::vector<std::int64_t>> expected;
  for (int t = 0; t < kThreads; ++t) {
    Rng rng(1000 + static_cast<std::uint64_t>(t));
    inputs.push_back(Tensor::normal(Shape{1, bundle.artifact.in_channels,
                                          bundle.artifact.image_size,
                                          bundle.artifact.image_size},
                                    rng, 0.0f, 0.25f));
    expected.push_back(reference.classify(inputs.back()));
  }

  hw::FaultPlan seu;
  seu.key_bits = {129};
  hw::FaultInjector injector(seu);

  std::atomic<int> wrong{0};
  std::atomic<int> succeeded{0};
  std::atomic<int> typed_failures{0};
  std::latch start(kThreads);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      start.arrive_and_wait();
      for (int r = 0; r < kRequestsPerThread; ++r) {
        if (t == 0 && r == 1) {
          // SEU weather from inside the storm: corrupt replica 0's sealed
          // key while the other threads keep the pool saturated.
          supervisor.pool().with_replica(0, [&](hw::TrustedDevice& device) {
            device.attach_fault_injector(&injector);
          });
        }
        try {
          const RequestResult result =
              supervisor.submit(inputs[static_cast<std::size_t>(t)]);
          succeeded.fetch_add(1, std::memory_order_relaxed);
          if (result.classes != expected[static_cast<std::size_t>(t)]) {
            wrong.fetch_add(1, std::memory_order_relaxed);
          }
        } catch (const TimeoutError&) {
          typed_failures.fetch_add(1, std::memory_order_relaxed);
        } catch (const DeviceUnavailableError&) {
          typed_failures.fetch_add(1, std::memory_order_relaxed);
        } catch (const RetryExhaustedError&) {
          typed_failures.fetch_add(1, std::memory_order_relaxed);
        }
        clock.advance(50);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }

  EXPECT_EQ(wrong.load(), 0);
  EXPECT_EQ(succeeded.load() + typed_failures.load(),
            kThreads * kRequestsPerThread);
  // Under degrade-to-subset with 3 clean replicas, the SEU should cost
  // retries at most — every request is expected to eventually succeed.
  EXPECT_EQ(succeeded.load(), kThreads * kRequestsPerThread);

  // Final maintenance pump: heal whatever is still sick, then the books
  // must balance — one successful re-provision per quarantine.
  DevicePool& pool = supervisor.pool();
  for (int round = 0; round < 16; ++round) {
    bool sick = false;
    for (std::size_t i = 0; i < pool.size(); ++i) {
      const BreakerState s = pool.state(i);
      sick = sick || s == BreakerState::kOpen || s == BreakerState::kQuarantined;
    }
    if (!sick) {
      break;
    }
    clock.advance(config.breaker.open_cooldown_us + 1);
    pool.run_maintenance(clock.now_us());
  }
  EXPECT_EQ(pool.admitting_count(), pool.size());
  const PoolStats stats = pool.stats();
  EXPECT_GE(stats.quarantines, 1u);  // the SEU must have been caught
  EXPECT_EQ(stats.reprovisions, stats.quarantines);
}

}  // namespace
}  // namespace hpnn::serve
