// Concurrency hammer for the metrics layer: counters, histograms, and the
// trace ring must stay exact (no lost updates) under N threads, both with
// raw std::thread and through the pool. Run under TSan via HPNN_SANITIZE.
#include "core/metrics.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "core/threadpool.hpp"

namespace hpnn::metrics {
namespace {

constexpr int kThreads = 8;
constexpr std::int64_t kIters = 100000;

/// Restores the pool to its environment-default size after each test.
class MetricsConcurrencyTest : public ::testing::Test {
 protected:
  void TearDown() override { core::set_thread_count(0); }
};

TEST_F(MetricsConcurrencyTest, CounterTotalIsExactUnderRawThreads) {
  Counter& c = MetricsRegistry::instance().counter("test.conc.counter");
  c.reset();
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::int64_t i = 0; i < kIters; ++i) {
        c.add();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(c.value(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  c.reset();
}

TEST_F(MetricsConcurrencyTest, HistogramCountAndSumStayExact) {
  Histogram& h = MetricsRegistry::instance().histogram(
      "test.conc.hist", {10.0, 100.0, 1000.0});
  h.reset();
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (std::int64_t i = 0; i < kIters / 10; ++i) {
        h.observe(2.0);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  const std::uint64_t expected =
      static_cast<std::uint64_t>(kThreads) * (kIters / 10);
  EXPECT_EQ(h.count(), expected);
  // Every observation is 2.0, so the CAS-loop sum has no rounding play.
  EXPECT_DOUBLE_EQ(h.sum(), 2.0 * static_cast<double>(expected));
  EXPECT_DOUBLE_EQ(h.min(), 2.0);
  EXPECT_DOUBLE_EQ(h.max(), 2.0);
  std::uint64_t bucket_total = 0;
  for (const auto b : h.bucket_counts()) {
    bucket_total += b;
  }
  EXPECT_EQ(bucket_total, expected);
  h.reset();
}

TEST_F(MetricsConcurrencyTest, MacroCountsAreExactThroughThePool) {
  core::set_thread_count(kThreads);
  Counter& c = MetricsRegistry::instance().counter("test.conc.pool_counter");
  c.reset();
  core::parallel_for(0, kThreads * 1000, 1,
                     [](std::int64_t begin, std::int64_t end) {
                       for (std::int64_t i = begin; i < end; ++i) {
                         HPNN_METRIC_COUNT("test.conc.pool_counter", 2);
                       }
                     });
  if (enabled()) {
    EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * 1000 * 2);
  } else {
    EXPECT_EQ(c.value(), 0u);
  }
  c.reset();
}

TEST_F(MetricsConcurrencyTest, TraceBufferRecordsEveryEvent) {
  TraceBuffer& buf = TraceBuffer::instance();
  buf.reset();
  constexpr std::int64_t kEvents = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&buf] {
      for (std::int64_t i = 0; i < kEvents; ++i) {
        buf.record("test.conc.trace", static_cast<std::uint64_t>(i), 1);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  const std::uint64_t total =
      static_cast<std::uint64_t>(kThreads) * kEvents;
  EXPECT_EQ(buf.total_recorded(), total);
  EXPECT_EQ(buf.events().size(),
            std::min<std::uint64_t>(total, buf.capacity()));
  buf.reset();
}

TEST_F(MetricsConcurrencyTest, ThreadOrdinalsAreDistinct) {
  std::mutex mu;
  std::set<int> ordinals;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      const int mine = thread_ordinal();
      EXPECT_EQ(thread_ordinal(), mine);  // stable within the thread
      std::lock_guard<std::mutex> lock(mu);
      ordinals.insert(mine);
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(ordinals.size(), static_cast<std::size_t>(kThreads));
  EXPECT_EQ(ordinals.count(thread_ordinal()), 0u);  // caller's differs
}

TEST_F(MetricsConcurrencyTest, SnapshotWhileWritingIsConsistent) {
  Counter& c = MetricsRegistry::instance().counter("test.conc.snap_counter");
  c.reset();
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      c.add();
    }
  });
  for (int i = 0; i < 50; ++i) {
    const Snapshot snap = MetricsRegistry::instance().snapshot();
    // A concurrent snapshot must see a monotone, valid value — never tear.
    for (const auto& entry : snap.counters) {
      if (entry.name == "test.conc.snap_counter") {
        EXPECT_LE(entry.value, c.value());
      }
    }
  }
  stop.store(true);
  writer.join();
  c.reset();
}

}  // namespace
}  // namespace hpnn::metrics
