// ServeDaemon in threaded mode (real worker threads, SteadyClock):
// concurrent producers against concurrent batch workers, graceful drain as
// the join barrier, and hard-stop failing whatever is still queued. Runs
// under TSan via the `threading` ctest label.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "core/error.hpp"
#include "hpnn/keychain.hpp"
#include "serve/chaos.hpp"
#include "serve/daemon/daemon.hpp"

namespace hpnn::serve {
namespace {

struct ThreadedHarness {
  ChaosModelBundle bundle = make_chaos_model(/*seed=*/33);
  std::unique_ptr<ServingSupervisor> supervisor;
  std::unique_ptr<ServeDaemon> daemon;
  std::unique_ptr<hw::TrustedDevice> reference;

  explicit ThreadedHarness(DaemonConfig daemon_config) {
    SupervisorConfig config;
    config.replicas = 2;
    supervisor = std::make_unique<ServingSupervisor>(
        bundle.master, bundle.model_id, bundle.artifact, bundle.challenge,
        config);
    daemon = std::make_unique<ServeDaemon>(*supervisor, bundle.master,
                                           bundle.model_id, daemon_config);
    reference = std::make_unique<hw::TrustedDevice>(
        obf::derive_model_key(bundle.master, bundle.model_id),
        obf::derive_schedule_seed(bundle.master, bundle.model_id),
        config.device);
    reference->load_model(bundle.artifact);
  }

  Tensor batch(std::uint64_t seed) const {
    Rng rng(seed);
    return Tensor::normal(Shape{1, bundle.artifact.in_channels,
                                bundle.artifact.image_size,
                                bundle.artifact.image_size},
                          rng, 0.0f, 0.25f);
  }
};

DaemonConfig threaded_config(std::size_t workers) {
  DaemonConfig config;
  config.workers = workers;
  config.batcher.max_batch_rows = 4;
  config.batcher.max_linger_us = 500;
  config.queue.capacity = 256;
  return config;
}

TEST(DaemonConcurrencyTest, ConcurrentProducersAllGetCorrectAnswers) {
  ThreadedHarness h(threaded_config(2));
  h.daemon->start();

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 6;
  std::atomic<int> correct{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const std::uint64_t seed =
            static_cast<std::uint64_t>(p) * 100 + static_cast<std::uint64_t>(i);
        const Tensor images = h.batch(seed);
        const Reply reply =
            h.daemon->submit("tenant" + std::to_string(p), images);
        if (reply.classes == h.reference->classify(images)) {
          correct.fetch_add(1);
        }
      }
    });
  }
  for (auto& producer : producers) {
    producer.join();
  }
  h.daemon->drain();

  EXPECT_EQ(correct.load(), kProducers * kPerProducer);
  const DaemonStats stats = h.daemon->stats();
  EXPECT_EQ(stats.completed,
            static_cast<std::uint64_t>(kProducers * kPerProducer));
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_GE(stats.batches, 1u);
}

TEST(DaemonConcurrencyTest, DrainWhileProducersRacingTheClosedDoor) {
  ThreadedHarness h(threaded_config(2));
  h.daemon->start();

  // Producers race the drain: every submit either completes or is turned
  // away at the closed door — nothing hangs, nothing is silently dropped.
  std::atomic<int> resolved{0};
  std::atomic<int> turned_away{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 3; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < 8; ++i) {
        try {
          (void)h.daemon->submit(
              "t" + std::to_string(p),
              h.batch(static_cast<std::uint64_t>(p * 50 + i)));
          resolved.fetch_add(1);
        } catch (const Error&) {
          turned_away.fetch_add(1);
        }
      }
    });
  }
  h.daemon->drain();
  for (auto& producer : producers) {
    producer.join();
  }

  EXPECT_EQ(resolved.load() + turned_away.load(), 24);
  EXPECT_EQ(h.daemon->stats().queue_depth, 0u);
}

TEST(DaemonConcurrencyTest, StopFailsQueuedRequestsInsteadOfHanging) {
  // No workers started: async submits just sit in the queue until stop()
  // fails them all; take() then rethrows instead of blocking forever.
  ThreadedHarness h(threaded_config(1));

  auto a = h.daemon->submit_async("a", h.batch(1));
  auto b = h.daemon->submit_async("b", h.batch(2));
  h.daemon->stop();

  ASSERT_TRUE(a->done() && b->done());
  EXPECT_THROW((void)a->take(), Error);
  EXPECT_THROW((void)b->take(), Error);
  EXPECT_EQ(h.daemon->stats().failed, 2u);
}

}  // namespace
}  // namespace hpnn::serve
