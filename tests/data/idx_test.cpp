#include "data/idx.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/error.hpp"
#include "data/synthetic.hpp"

namespace hpnn::data {
namespace {

/// Hand-crafts a tiny valid IDX pair in memory.
std::pair<std::string, std::string> make_idx(std::int64_t n,
                                             std::int64_t side) {
  std::string img;
  std::string lab;
  const auto be32 = [](std::string& s, std::uint32_t v) {
    s.push_back(static_cast<char>(v >> 24));
    s.push_back(static_cast<char>(v >> 16));
    s.push_back(static_cast<char>(v >> 8));
    s.push_back(static_cast<char>(v));
  };
  be32(img, 0x803);
  be32(img, static_cast<std::uint32_t>(n));
  be32(img, static_cast<std::uint32_t>(side));
  be32(img, static_cast<std::uint32_t>(side));
  be32(lab, 0x801);
  be32(lab, static_cast<std::uint32_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t p = 0; p < side * side; ++p) {
      img.push_back(static_cast<char>((i * 37 + p * 11) % 256));
    }
    lab.push_back(static_cast<char>(i % 10));
  }
  return {img, lab};
}

TEST(IdxTest, LoadsValidPair) {
  auto [img, lab] = make_idx(6, 8);
  std::istringstream is(img), ls(lab);
  const Dataset d = load_idx(is, ls, "mini");
  EXPECT_EQ(d.size(), 6);
  EXPECT_EQ(d.channels(), 1);
  EXPECT_EQ(d.height(), 8);
  EXPECT_EQ(d.width(), 8);
  EXPECT_EQ(d.labels[3], 3);
  d.validate();
}

TEST(IdxTest, SamplesAreStandardized) {
  auto [img, lab] = make_idx(3, 8);
  std::istringstream is(img), ls(lab);
  const Dataset d = load_idx(is, ls, "mini");
  const std::int64_t sample = 64;
  for (std::int64_t i = 0; i < d.size(); ++i) {
    double mean = 0.0;
    for (std::int64_t p = 0; p < sample; ++p) {
      mean += d.images.data()[i * sample + p];
    }
    EXPECT_NEAR(mean / sample, 0.0, 1e-4);
  }
}

TEST(IdxTest, LimitCapsSamples) {
  auto [img, lab] = make_idx(10, 4);
  std::istringstream is(img), ls(lab);
  EXPECT_EQ(load_idx(is, ls, "mini", 10, 4).size(), 4);
}

TEST(IdxTest, BadMagicRejected) {
  auto [img, lab] = make_idx(2, 4);
  img[3] = 0x01;  // corrupt image magic
  std::istringstream is(img), ls(lab);
  EXPECT_THROW(load_idx(is, ls, "x"), SerializationError);
}

TEST(IdxTest, CountMismatchRejected) {
  auto [img, lab] = make_idx(2, 4);
  lab[7] = 9;  // claim 9 labels
  std::istringstream is(img), ls(lab);
  EXPECT_THROW(load_idx(is, ls, "x"), SerializationError);
}

TEST(IdxTest, TruncatedImagesRejected) {
  auto [img, lab] = make_idx(2, 4);
  img.resize(img.size() - 5);
  std::istringstream is(img), ls(lab);
  EXPECT_THROW(load_idx(is, ls, "x"), SerializationError);
}

TEST(IdxTest, OutOfRangeLabelRejected) {
  auto [img, lab] = make_idx(2, 4);
  lab.back() = static_cast<char>(200);
  std::istringstream is(img), ls(lab);
  EXPECT_THROW(load_idx(is, ls, "x"), SerializationError);
}

TEST(IdxTest, MissingFilesThrow) {
  EXPECT_THROW(load_idx_files("/nonexistent/img", "/nonexistent/lab", "x"),
               SerializationError);
}

TEST(IdxTest, ExportReimportRoundTrip) {
  // Export a synthetic grayscale dataset to IDX and read it back: shapes,
  // labels and standardization survive (pixel values are min-max quantized
  // to ubyte, so only structure is exact).
  SyntheticConfig sc;
  sc.train_per_class = 2;
  sc.test_per_class = 1;
  sc.image_size = 16;
  const auto split = make_dataset(SyntheticFamily::kFashionSynth, sc);
  std::stringstream img, lab;
  save_idx(img, lab, split.train);
  const Dataset back = load_idx(img, lab, "roundtrip");
  EXPECT_EQ(back.size(), split.train.size());
  EXPECT_EQ(back.labels, split.train.labels);
  EXPECT_EQ(back.height(), 16);
}

TEST(IdxTest, ExportRejectsColorData) {
  SyntheticConfig sc;
  sc.train_per_class = 1;
  sc.test_per_class = 1;
  sc.image_size = 16;
  const auto split = make_dataset(SyntheticFamily::kDigitSynth, sc);
  std::stringstream img, lab;
  EXPECT_THROW(save_idx(img, lab, split.train), InvariantError);
}

}  // namespace
}  // namespace hpnn::data
