#include "data/augment.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "data/synthetic.hpp"

namespace hpnn::data {
namespace {

Tensor sample_image(std::uint64_t seed = 1) {
  Rng rng(seed);
  return Tensor::normal(Shape{1, 8, 8}, rng);
}

TEST(AugmentTest, NoOpConfigIsIdentity) {
  Tensor img = sample_image();
  const Tensor orig = img;
  AugmentConfig cfg;
  cfg.shift_pixels = 0;
  cfg.hflip_prob = 0.0;
  cfg.noise_stddev = 0.0;
  cfg.erase_prob = 0.0;
  Rng rng(2);
  augment_sample(img, cfg, rng);
  EXPECT_TRUE(img.allclose(orig, 0.0f, 0.0f));
}

TEST(AugmentTest, ShiftMovesContent) {
  Tensor img(Shape{1, 4, 4});
  img.at(0 * 4 * 4 + 1 * 4 + 1) = 1.0f;  // single lit pixel at (1,1)
  AugmentConfig cfg;
  cfg.shift_pixels = 1;
  cfg.hflip_prob = 0;
  cfg.noise_stddev = 0;
  cfg.erase_prob = 0;
  // Try until a nonzero shift occurs; content must stay a single pixel.
  Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    Tensor shifted = img;
    augment_sample(shifted, cfg, rng);
    float total = shifted.sum();
    EXPECT_TRUE(total == 0.0f || total == 1.0f);  // clipped out or moved
  }
}

TEST(AugmentTest, HflipIsInvolution) {
  Tensor img = sample_image(5);
  Tensor flipped = img;
  AugmentConfig cfg;
  cfg.shift_pixels = 0;
  cfg.hflip_prob = 1.0;  // always flip
  cfg.noise_stddev = 0;
  cfg.erase_prob = 0;
  Rng rng(4);
  augment_sample(flipped, cfg, rng);
  EXPECT_FALSE(flipped.allclose(img, 0.0f, 0.0f));
  augment_sample(flipped, cfg, rng);
  EXPECT_TRUE(flipped.allclose(img, 0.0f, 0.0f));
}

TEST(AugmentTest, EraseZeroesAPatch) {
  Tensor img(Shape{1, 8, 8}, 1.0f);
  AugmentConfig cfg;
  cfg.shift_pixels = 0;
  cfg.hflip_prob = 0;
  cfg.noise_stddev = 0;
  cfg.erase_prob = 1.0;
  cfg.erase_fraction = 0.25;  // 2x2 patch on an 8x8 image
  Rng rng(6);
  augment_sample(img, cfg, rng);
  EXPECT_FLOAT_EQ(img.sum(), 64.0f - 4.0f);
}

TEST(AugmentTest, NoiseChangesEveryPixelSlightly) {
  Tensor img = sample_image(7);
  const Tensor orig = img;
  AugmentConfig cfg;
  cfg.shift_pixels = 0;
  cfg.hflip_prob = 0;
  cfg.erase_prob = 0;
  cfg.noise_stddev = 0.01;
  Rng rng(8);
  augment_sample(img, cfg, rng);
  EXPECT_FALSE(img.allclose(orig, 0.0f, 0.0f));
  EXPECT_TRUE(img.allclose(orig, 0.0f, 0.1f));
}

TEST(AugmentTest, DatasetAugmentationDeterministic) {
  SyntheticConfig sc;
  sc.train_per_class = 2;
  sc.test_per_class = 1;
  sc.image_size = 16;
  const auto split = make_dataset(SyntheticFamily::kFashionSynth, sc);
  const Dataset a = augment_dataset(split.train, {}, 9);
  const Dataset b = augment_dataset(split.train, {}, 9);
  EXPECT_TRUE(a.images.allclose(b.images, 0.0f, 0.0f));
  const Dataset c = augment_dataset(split.train, {}, 10);
  EXPECT_FALSE(a.images.allclose(c.images, 0.0f, 0.0f));
  EXPECT_EQ(a.labels, split.train.labels);
}

TEST(AugmentTest, RejectsNonChwSample) {
  Tensor img(Shape{8, 8});
  Rng rng(1);
  EXPECT_THROW(augment_sample(img, {}, rng), InvariantError);
}

TEST(ConcatTest, AppendsSamples) {
  SyntheticConfig sc;
  sc.train_per_class = 2;
  sc.test_per_class = 1;
  sc.image_size = 16;
  const auto split = make_dataset(SyntheticFamily::kDigitSynth, sc);
  const Dataset doubled = concat(split.train, split.train);
  EXPECT_EQ(doubled.size(), 2 * split.train.size());
  EXPECT_EQ(doubled.labels[0],
            doubled.labels[static_cast<std::size_t>(split.train.size())]);
  doubled.validate();
}

TEST(ConcatTest, ShapeMismatchThrows) {
  SyntheticConfig sc;
  sc.train_per_class = 1;
  sc.test_per_class = 1;
  sc.image_size = 16;
  const auto gray = make_dataset(SyntheticFamily::kFashionSynth, sc);
  const auto color = make_dataset(SyntheticFamily::kDigitSynth, sc);
  EXPECT_THROW(concat(gray.train, color.train), InvariantError);
}

}  // namespace
}  // namespace hpnn::data
