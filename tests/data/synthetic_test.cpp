#include "data/synthetic.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/error.hpp"

namespace hpnn::data {
namespace {

class FamilyTest : public ::testing::TestWithParam<SyntheticFamily> {};

TEST_P(FamilyTest, ShapesMatchStandIn) {
  SyntheticConfig cfg;
  cfg.train_per_class = 3;
  cfg.test_per_class = 2;
  const auto split = make_dataset(GetParam(), cfg);
  const std::int64_t expected_ch =
      GetParam() == SyntheticFamily::kFashionSynth ? 1 : 3;
  const std::int64_t expected_size =
      GetParam() == SyntheticFamily::kFashionSynth ? 28 : 32;
  EXPECT_EQ(split.train.channels(), expected_ch);
  EXPECT_EQ(split.train.height(), expected_size);
  EXPECT_EQ(split.train.width(), expected_size);
  EXPECT_EQ(split.train.size(), 3 * kSyntheticClasses);
  EXPECT_EQ(split.test.size(), 2 * kSyntheticClasses);
  EXPECT_EQ(split.train.num_classes, kSyntheticClasses);
}

TEST_P(FamilyTest, DeterministicForSeed) {
  SyntheticConfig cfg;
  cfg.train_per_class = 2;
  cfg.test_per_class = 1;
  cfg.seed = 77;
  const auto a = make_dataset(GetParam(), cfg);
  const auto b = make_dataset(GetParam(), cfg);
  EXPECT_TRUE(a.train.images.allclose(b.train.images, 0.0f, 0.0f));
  EXPECT_EQ(a.train.labels, b.train.labels);
}

TEST_P(FamilyTest, DifferentSeedsDiffer) {
  SyntheticConfig a_cfg;
  a_cfg.train_per_class = 2;
  a_cfg.test_per_class = 1;
  a_cfg.seed = 1;
  SyntheticConfig b_cfg = a_cfg;
  b_cfg.seed = 2;
  const auto a = make_dataset(GetParam(), a_cfg);
  const auto b = make_dataset(GetParam(), b_cfg);
  EXPECT_FALSE(a.train.images.allclose(b.train.images, 1e-3f, 1e-3f));
}

TEST_P(FamilyTest, BalancedClasses) {
  SyntheticConfig cfg;
  cfg.train_per_class = 4;
  cfg.test_per_class = 2;
  const auto split = make_dataset(GetParam(), cfg);
  for (const auto count : class_histogram(split.train)) {
    EXPECT_EQ(count, 4);
  }
}

TEST_P(FamilyTest, PerSampleStandardization) {
  SyntheticConfig cfg;
  cfg.train_per_class = 2;
  cfg.test_per_class = 1;
  const auto split = make_dataset(GetParam(), cfg);
  const auto& img = split.train.images;
  const std::int64_t sample = img.numel() / img.dim(0);
  // Every sample has ~zero mean: global brightness carries no class signal.
  for (std::int64_t n = 0; n < img.dim(0); ++n) {
    double s = 0.0;
    for (std::int64_t i = 0; i < sample; ++i) {
      s += img.data()[n * sample + i];
    }
    EXPECT_NEAR(s / sample, 0.0, 1e-3);
  }
}

TEST_P(FamilyTest, CustomImageSize) {
  SyntheticConfig cfg;
  cfg.train_per_class = 1;
  cfg.test_per_class = 1;
  cfg.image_size = 16;
  const auto split = make_dataset(GetParam(), cfg);
  EXPECT_EQ(split.train.height(), 16);
  EXPECT_EQ(split.train.width(), 16);
}

TEST_P(FamilyTest, IntraClassVariation) {
  // Two samples of the same class must differ (jitter + noise).
  SyntheticConfig cfg;
  Rng rng(5);
  const Tensor a = render_sample(GetParam(), 0, 20, cfg, rng);
  const Tensor b = render_sample(GetParam(), 0, 20, cfg, rng);
  EXPECT_FALSE(a.allclose(b, 1e-3f, 1e-3f));
}

TEST_P(FamilyTest, InterClassSeparation) {
  // Class means should differ more than intra-class samples on average.
  SyntheticConfig cfg;
  cfg.noise_stddev = 0.0;
  Rng rng(6);
  const Tensor a0 = render_sample(GetParam(), 0, 20, cfg, rng);
  const Tensor a1 = render_sample(GetParam(), 0, 20, cfg, rng);
  const Tensor b0 = render_sample(GetParam(), 5, 20, cfg, rng);
  const float intra = (a0 - a1).squared_norm();
  const float inter = (a0 - b0).squared_norm();
  EXPECT_GT(inter, intra * 0.5f);
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, FamilyTest,
                         ::testing::Values(SyntheticFamily::kFashionSynth,
                                           SyntheticFamily::kColorShapes,
                                           SyntheticFamily::kDigitSynth),
                         [](const auto& info) {
                           return family_name(info.param);
                         });

TEST(SyntheticTest, FamilyNames) {
  EXPECT_EQ(family_name(SyntheticFamily::kFashionSynth), "FashionSynth");
  EXPECT_EQ(family_stands_for(SyntheticFamily::kFashionSynth),
            "Fashion-MNIST");
  EXPECT_EQ(family_stands_for(SyntheticFamily::kColorShapes), "CIFAR-10");
  EXPECT_EQ(family_stands_for(SyntheticFamily::kDigitSynth), "SVHN");
}

TEST(SyntheticTest, LabelOutOfRangeThrows) {
  SyntheticConfig cfg;
  Rng rng(1);
  EXPECT_THROW(
      render_sample(SyntheticFamily::kFashionSynth, 10, 20, cfg, rng),
      InvariantError);
}

TEST(SyntheticTest, TooSmallImageThrows) {
  SyntheticConfig cfg;
  cfg.image_size = 8;
  EXPECT_THROW(make_dataset(SyntheticFamily::kFashionSynth, cfg),
               InvariantError);
}

TEST(SyntheticTest, InvalidCountsThrow) {
  SyntheticConfig cfg;
  cfg.train_per_class = 0;
  EXPECT_THROW(make_dataset(SyntheticFamily::kDigitSynth, cfg),
               InvariantError);
}

}  // namespace
}  // namespace hpnn::data
