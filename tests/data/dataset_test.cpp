#include "data/dataset.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/serialize.hpp"

#include "core/error.hpp"

namespace hpnn::data {
namespace {

Dataset tiny_dataset(std::int64_t per_class, std::int64_t classes) {
  Dataset d;
  d.name = "tiny";
  d.num_classes = classes;
  const std::int64_t n = per_class * classes;
  d.images = Tensor::arange(Shape{n, 1, 2, 2});
  d.labels.resize(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    d.labels[static_cast<std::size_t>(i)] = i % classes;
  }
  return d;
}

TEST(DatasetTest, ValidatePasses) {
  EXPECT_NO_THROW(tiny_dataset(5, 3).validate());
}

TEST(DatasetTest, ValidateCatchesLabelRange) {
  Dataset d = tiny_dataset(2, 3);
  d.labels[0] = 3;
  EXPECT_THROW(d.validate(), InvariantError);
  d.labels[0] = -1;
  EXPECT_THROW(d.validate(), InvariantError);
}

TEST(DatasetTest, ValidateCatchesCountMismatch) {
  Dataset d = tiny_dataset(2, 3);
  d.labels.pop_back();
  EXPECT_THROW(d.validate(), InvariantError);
}

TEST(DatasetTest, SubsetSelectsRows) {
  Dataset d = tiny_dataset(2, 2);
  const Dataset s = subset(d, {1, 3});
  EXPECT_EQ(s.size(), 2);
  EXPECT_EQ(s.labels[0], d.labels[1]);
  EXPECT_EQ(s.images.at(0), d.images.at(4));  // sample 1 starts at flat 4
}

TEST(DatasetTest, SubsetOutOfRangeThrows) {
  Dataset d = tiny_dataset(2, 2);
  EXPECT_THROW(subset(d, {7}), InvariantError);
}

TEST(ThiefSubsetTest, FractionAndStratification) {
  Dataset d = tiny_dataset(100, 5);
  Rng rng(1);
  const Dataset thief = thief_subset(d, 0.1, rng);
  EXPECT_EQ(thief.size(), 50);  // 10% of 500
  const auto hist = class_histogram(thief);
  for (const auto h : hist) {
    EXPECT_EQ(h, 10);  // exactly 10% of each class
  }
}

TEST(ThiefSubsetTest, ZeroAlphaGivesEmpty) {
  Dataset d = tiny_dataset(10, 2);
  Rng rng(2);
  const Dataset thief = thief_subset(d, 0.0, rng);
  EXPECT_EQ(thief.size(), 0);
}

TEST(ThiefSubsetTest, FullAlphaGivesEverything) {
  Dataset d = tiny_dataset(10, 2);
  Rng rng(3);
  const Dataset thief = thief_subset(d, 1.0, rng);
  EXPECT_EQ(thief.size(), d.size());
}

TEST(ThiefSubsetTest, InvalidAlphaThrows) {
  Dataset d = tiny_dataset(4, 2);
  Rng rng(4);
  EXPECT_THROW(thief_subset(d, -0.1, rng), InvariantError);
  EXPECT_THROW(thief_subset(d, 1.5, rng), InvariantError);
}

TEST(ThiefSubsetTest, DifferentSeedsDifferentSamples) {
  Dataset d = tiny_dataset(100, 2);
  Rng r1(5);
  Rng r2(6);
  const Dataset a = thief_subset(d, 0.05, r1);
  const Dataset b = thief_subset(d, 0.05, r2);
  EXPECT_EQ(a.size(), b.size());
  bool any_diff = false;
  for (std::int64_t i = 0; i < a.images.numel(); ++i) {
    if (a.images.at(i) != b.images.at(i)) {
      any_diff = true;
      break;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(DatasetIoTest, RoundTrip) {
  const Dataset d = tiny_dataset(3, 4);
  std::stringstream ss;
  save_dataset(ss, d);
  const Dataset loaded = load_dataset(ss);
  EXPECT_EQ(loaded.name, d.name);
  EXPECT_EQ(loaded.num_classes, d.num_classes);
  EXPECT_EQ(loaded.labels, d.labels);
  EXPECT_TRUE(loaded.images.allclose(d.images, 0.0f, 0.0f));
}

TEST(DatasetIoTest, FileRoundTrip) {
  const Dataset d = tiny_dataset(2, 3);
  const std::string path = ::testing::TempDir() + "/tiny.hpds";
  save_dataset_file(path, d);
  const Dataset loaded = load_dataset_file(path);
  EXPECT_EQ(loaded.labels, d.labels);
  EXPECT_THROW(load_dataset_file("/nonexistent/x.hpds"),
               SerializationError);
}

TEST(DatasetIoTest, BadMagicThrows) {
  std::stringstream ss("garbage");
  EXPECT_THROW(load_dataset(ss), SerializationError);
}

TEST(DatasetIoTest, TruncatedThrows) {
  const Dataset d = tiny_dataset(2, 2);
  std::stringstream ss;
  save_dataset(ss, d);
  std::string payload = ss.str();
  payload.resize(payload.size() / 2);
  std::stringstream truncated(payload);
  EXPECT_THROW(load_dataset(truncated), SerializationError);
}

TEST(DatasetIoTest, InconsistentLabelsRejected) {
  Dataset d = tiny_dataset(2, 2);
  std::stringstream ss;
  BinaryWriter w(ss);
  // Hand-craft a file whose labels are out of class range.
  w.write_u32(0x48504453u);
  w.write_string("bad");
  w.write_i64(2);
  w.write_i64_vector(d.images.shape().dims());
  w.write_f32_vector(std::vector<float>(
      d.images.data(), d.images.data() + d.images.numel()));
  w.write_i64_vector(std::vector<std::int64_t>(d.labels.size(), 99));
  EXPECT_THROW(load_dataset(ss), SerializationError);
}

TEST(ClassHistogramTest, CountsPerClass) {
  Dataset d = tiny_dataset(3, 4);
  const auto hist = class_histogram(d);
  ASSERT_EQ(hist.size(), 4u);
  for (const auto h : hist) {
    EXPECT_EQ(h, 3);
  }
}

}  // namespace
}  // namespace hpnn::data
