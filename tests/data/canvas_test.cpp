#include "data/canvas.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace hpnn::data {
namespace {

float px(const Canvas& c, std::int64_t ch, std::int64_t y, std::int64_t x) {
  return c.pixels()[static_cast<std::size_t>(
      (ch * c.height() + y) * c.width() + x)];
}

TEST(CanvasTest, BackgroundFill) {
  Canvas c(3, 4, 4, Color{0.1f, 0.2f, 0.3f});
  EXPECT_FLOAT_EQ(px(c, 0, 0, 0), 0.1f);
  EXPECT_FLOAT_EQ(px(c, 1, 2, 3), 0.2f);
  EXPECT_FLOAT_EQ(px(c, 2, 3, 3), 0.3f);
}

TEST(CanvasTest, InvalidChannelCountThrows) {
  EXPECT_THROW(Canvas(2, 4, 4), InvariantError);
  EXPECT_THROW(Canvas(1, 0, 4), InvariantError);
}

TEST(CanvasTest, BlendIsMax) {
  Canvas c(1, 2, 2, Color::gray(0.5f));
  c.blend_pixel(0, 0, Color::gray(0.3f));  // darker: no effect
  EXPECT_FLOAT_EQ(px(c, 0, 0, 0), 0.5f);
  c.blend_pixel(0, 0, Color::gray(0.9f));  // brighter: wins
  EXPECT_FLOAT_EQ(px(c, 0, 0, 0), 0.9f);
}

TEST(CanvasTest, OutOfBoundsIsNoOp) {
  Canvas c(1, 2, 2);
  EXPECT_NO_THROW(c.blend_pixel(-1, 0, Color::gray(1.0f)));
  EXPECT_NO_THROW(c.blend_pixel(0, 5, Color::gray(1.0f)));
  EXPECT_NO_THROW(c.set_pixel(10, 10, Color::gray(1.0f)));
}

TEST(CanvasTest, FillRectCoversExactRegion) {
  Canvas c(1, 4, 4);
  c.fill_rect(1, 1, 3, 3, Color::gray(1.0f));
  EXPECT_FLOAT_EQ(px(c, 0, 0, 0), 0.0f);
  EXPECT_FLOAT_EQ(px(c, 0, 1, 1), 1.0f);
  EXPECT_FLOAT_EQ(px(c, 0, 2, 2), 1.0f);
  EXPECT_FLOAT_EQ(px(c, 0, 3, 3), 0.0f);  // exclusive bound
}

TEST(CanvasTest, FillRectClipsToCanvas) {
  Canvas c(1, 4, 4);
  EXPECT_NO_THROW(c.fill_rect(-5, -5, 10, 10, Color::gray(1.0f)));
  EXPECT_FLOAT_EQ(px(c, 0, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(px(c, 0, 3, 3), 1.0f);
}

TEST(CanvasTest, EllipseCoversCenterNotCorners) {
  Canvas c(1, 11, 11);
  c.fill_ellipse(5, 5, 4, 4, Color::gray(1.0f));
  EXPECT_FLOAT_EQ(px(c, 0, 5, 5), 1.0f);
  EXPECT_FLOAT_EQ(px(c, 0, 0, 0), 0.0f);
  EXPECT_FLOAT_EQ(px(c, 0, 5, 1), 1.0f);  // on the radius
}

TEST(CanvasTest, RingHasHole) {
  Canvas c(1, 21, 21);
  c.fill_ring(10, 10, 8, 8, 0.6, Color::gray(1.0f));
  EXPECT_FLOAT_EQ(px(c, 0, 10, 10), 0.0f);  // hole
  EXPECT_FLOAT_EQ(px(c, 0, 10, 3), 1.0f);   // band
}

TEST(CanvasTest, TriangleOrientationIndependent) {
  Canvas a(1, 10, 10);
  Canvas b(1, 10, 10);
  a.fill_triangle({1, 8, 8}, {5, 1, 9}, Color::gray(1.0f));
  b.fill_triangle({8, 8, 1}, {9, 1, 5}, Color::gray(1.0f));  // reversed
  EXPECT_EQ(a.pixels(), b.pixels());
  EXPECT_FLOAT_EQ(px(a, 0, 6, 5), 1.0f);
}

TEST(CanvasTest, LineConnectsEndpoints) {
  Canvas c(1, 8, 8);
  c.draw_line(0, 0, 7, 7, Color::gray(1.0f));
  EXPECT_FLOAT_EQ(px(c, 0, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(px(c, 0, 7, 7), 1.0f);
  EXPECT_FLOAT_EQ(px(c, 0, 3, 3), 1.0f);
}

TEST(CanvasTest, StripesAlternate) {
  Canvas c(1, 8, 8);
  c.fill_stripes(0, 0, 8, 8, 4, /*vertical=*/false, Color::gray(1.0f));
  EXPECT_FLOAT_EQ(px(c, 0, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(px(c, 0, 1, 0), 1.0f);
  EXPECT_FLOAT_EQ(px(c, 0, 2, 0), 0.0f);
  EXPECT_FLOAT_EQ(px(c, 0, 3, 0), 0.0f);
  EXPECT_FLOAT_EQ(px(c, 0, 4, 0), 1.0f);
}

TEST(CanvasTest, StripePeriodValidated) {
  Canvas c(1, 4, 4);
  EXPECT_THROW(c.fill_stripes(0, 0, 4, 4, 1, true, Color::gray(1.0f)),
               InvariantError);
}

}  // namespace
}  // namespace hpnn::data
