// The distillation attacker as a campaign peer: seeded knowledge
// distillation against each registered scheme's no-key view must stay below
// the documented ceiling (student accuracy < 0.45 — see EXPERIMENTS.md),
// and two same-seed runs must be byte-identical so curves are reproducible.
#include "attack/distillation.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <sstream>

#include "core/error.hpp"
#include "data/synthetic.hpp"
#include "hpnn/lock_scheme.hpp"
#include "hpnn/model_io.hpp"
#include "hpnn/owner.hpp"

namespace hpnn::attack {
namespace {

const data::SplitDataset& shared_split() {
  static const data::SplitDataset split = [] {
    data::SyntheticConfig dc;
    dc.train_per_class = 60;
    dc.test_per_class = 15;
    dc.image_size = 16;
    dc.noise_stddev = 0.06;
    dc.jitter = 0.08;
    dc.seed = 21;
    return data::make_dataset(data::SyntheticFamily::kFashionSynth, dc);
  }();
  return split;
}

/// One trained, protected artifact per registered scheme (built lazily —
/// training dominates this suite's runtime).
const obf::PublishedModel& artifact_for(const std::string& tag) {
  static std::map<std::string, obf::PublishedModel> artifacts;
  auto it = artifacts.find(tag);
  if (it == artifacts.end()) {
    const obf::LockScheme& scheme = obf::scheme_by_tag(tag);
    Rng rng(606);
    const obf::HpnnKey master = obf::HpnnKey::random(rng);
    const obf::SchemeSecrets secrets =
        obf::derive_scheme_secrets(master, "kd:" + tag);
    const data::SplitDataset& split = shared_split();
    models::ModelConfig mc;
    mc.in_channels = 1;
    mc.image_size = 16;
    mc.init_seed = 6;
    auto model =
        scheme.make_trainable(models::Architecture::kCnn1, mc, secrets);
    obf::OwnerTrainOptions opt;
    opt.epochs = 6;
    opt.sgd = {0.01, 0.9, 5e-4};
    const auto report =
        obf::train_locked_model(*model, split.train, split.test, opt);
    EXPECT_GT(report.test_accuracy, 0.6) << tag;
    std::stringstream ss;
    obf::publish_protected_model(ss, scheme, *model, secrets);
    it = artifacts.emplace(tag, obf::read_published_model(ss)).first;
  }
  return it->second;
}

class DistillationCampaign : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(
    AllRegisteredSchemes, DistillationCampaign,
    ::testing::ValuesIn(obf::registered_scheme_tags()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST_P(DistillationCampaign, StudentStaysBelowCeiling) {
  const obf::PublishedModel& artifact = artifact_for(GetParam());
  const data::SplitDataset& split = shared_split();
  Rng rng(8);
  const data::Dataset transfer = data::thief_subset(split.train, 0.5, rng);

  DistillationOptions opt;
  opt.epochs = 10;
  opt.seed = 31;
  const DistillationReport report =
      distill_attack(artifact, transfer, split.test, opt);
  // The no-key teacher is garbage, so the student cannot exceed the
  // documented ceiling (EXPERIMENTS.md pins 0.45 for this recipe).
  EXPECT_LT(report.teacher_accuracy, 0.4)
      << GetParam() << " no-key teacher leaks accuracy";
  EXPECT_LT(report.student_accuracy, 0.45)
      << GetParam() << " distilled student exceeds the documented ceiling";
  EXPECT_EQ(report.transfer_size, transfer.size());
  EXPECT_GT(report.oracle_queries, 0);
}

TEST_P(DistillationCampaign, SameSeedRunsAreByteIdentical) {
  const obf::PublishedModel& artifact = artifact_for(GetParam());
  const data::SplitDataset& split = shared_split();
  Rng rng(9);
  const data::Dataset transfer = data::thief_subset(split.train, 0.4, rng);

  DistillationOptions opt;
  opt.epochs = 3;
  opt.seed = 77;
  const DistillationReport a =
      distill_attack(artifact, transfer, split.test, opt);
  const DistillationReport b =
      distill_attack(artifact, transfer, split.test, opt);
  // Exact (not approximate) equality: the attack is a deterministic
  // function of (artifact, transfer set, options).
  EXPECT_EQ(std::memcmp(&a.student_accuracy, &b.student_accuracy,
                        sizeof(double)),
            0);
  EXPECT_EQ(std::memcmp(&a.teacher_accuracy, &b.teacher_accuracy,
                        sizeof(double)),
            0);
  EXPECT_EQ(a.transfer_size, b.transfer_size);
  EXPECT_EQ(a.oracle_queries, b.oracle_queries);
}

TEST(DistillationCampaignTest, UnknownSchemeTagFailsClosed) {
  obf::PublishedModel artifact = artifact_for(obf::kSignLockTag);
  artifact.scheme_tag = "quantum-lock";
  const data::SplitDataset& split = shared_split();
  DistillationOptions opt;
  opt.epochs = 1;
  EXPECT_THROW(
      (void)distill_attack(artifact, split.train, split.test, opt),
      SerializationError);
}

}  // namespace
}  // namespace hpnn::attack
