#include "attack/key_recovery.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "data/synthetic.hpp"
#include "hpnn/owner.hpp"

namespace hpnn::attack {
namespace {

/// Shared fixture: one trained locked model (easy settings, small net) —
/// key recovery needs many oracle evaluations, so keep everything tiny.
class KeyRecoveryFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SyntheticConfig dc;
    dc.train_per_class = 40;
    dc.test_per_class = 10;
    dc.image_size = 16;
    dc.noise_stddev = 0.06;
    dc.jitter = 0.08;
    dc.seed = 77;
    split_ = new data::SplitDataset(
        data::make_dataset(data::SyntheticFamily::kFashionSynth, dc));

    models::ModelConfig mc;
    mc.in_channels = 1;
    mc.image_size = 16;
    mc.init_seed = 2;
    Rng krng(4);
    key_ = new obf::HpnnKey(obf::HpnnKey::random(krng));
    schedule_seed_ = 515;
    obf::Scheduler sched(schedule_seed_);
    obf::LockedModel model(models::Architecture::kCnn1, mc, *key_, sched);
    obf::OwnerTrainOptions opt;
    opt.epochs = 5;
    opt.sgd = {0.01, 0.9, 5e-4};
    report_ = new obf::OwnerTrainReport(
        obf::train_locked_model(model, split_->train, split_->test, opt));

    std::stringstream ss;
    obf::publish_model(ss, model);
    artifact_ = new obf::PublishedModel(obf::read_published_model(ss));
  }

  static void TearDownTestSuite() {
    delete artifact_;
    delete report_;
    delete key_;
    delete split_;
  }

  static data::SplitDataset* split_;
  static obf::HpnnKey* key_;
  static std::uint64_t schedule_seed_;
  static obf::OwnerTrainReport* report_;
  static obf::PublishedModel* artifact_;
};

data::SplitDataset* KeyRecoveryFixture::split_ = nullptr;
obf::HpnnKey* KeyRecoveryFixture::key_ = nullptr;
std::uint64_t KeyRecoveryFixture::schedule_seed_ = 0;
obf::OwnerTrainReport* KeyRecoveryFixture::report_ = nullptr;
obf::PublishedModel* KeyRecoveryFixture::artifact_ = nullptr;

TEST_F(KeyRecoveryFixture, KnownScheduleRecoversFunctionality) {
  // With the schedule secrecy assumption violated, greedy coordinate
  // descent on a loss oracle climbs toward the owner's accuracy — the
  // finding that makes the private schedule load-bearing.
  Rng rng(1);
  const data::Dataset oracle = data::thief_subset(split_->train, 0.25, rng);
  KeyRecoveryOptions opt;
  opt.sweeps = 8;
  const auto report =
      recover_key(*artifact_, oracle, split_->test, *key_, schedule_seed_,
                  ScheduleKnowledge::kKnownSchedule, opt);
  EXPECT_GT(report.final_accuracy, report.start_accuracy + 0.3);
  EXPECT_GT(report.test_accuracy, 0.45);
  // The *functional* key is recovered even though many don't-care bits
  // (bits mapping to unimportant neurons) stay wrong; agreement must at
  // least beat a random guess (~128 bits).
  EXPECT_GT(report.bits_matching, 128u);
}

TEST_F(KeyRecoveryFixture, UnknownScheduleStillFindsAFunctionalMask) {
  // Security finding of this reproduction (see EXPERIMENTS.md and
  // bench_ablation_key_recovery): at small neurons-per-key-bit ratios the
  // loss-oracle descent finds a *functional* mask even under a wrong
  // schedule guess — the recovered key shares only ~chance bits with the
  // true key, yet unlocks the stolen weights. Schedule secrecy alone does
  // not protect small models.
  Rng rng(2);
  const data::Dataset oracle = data::thief_subset(split_->train, 0.25, rng);
  KeyRecoveryOptions opt;
  opt.sweeps = 8;
  opt.guessed_schedule_seed = 0xBAD5EED;
  const auto report =
      recover_key(*artifact_, oracle, split_->test, *key_, schedule_seed_,
                  ScheduleKnowledge::kUnknownSchedule, opt);
  // The attack improves dramatically over the all-zero start ...
  EXPECT_GT(report.final_accuracy, report.start_accuracy + 0.3);
  // ... without actually learning the key bits (≈ chance agreement).
  EXPECT_GT(report.bits_matching, 96u);
  EXPECT_LT(report.bits_matching, 160u);
}

TEST_F(KeyRecoveryFixture, QueryBudgetAccounting) {
  Rng rng(3);
  const data::Dataset oracle = data::thief_subset(split_->train, 0.1, rng);
  KeyRecoveryOptions opt;
  opt.sweeps = 1;
  const auto report =
      recover_key(*artifact_, oracle, split_->test, *key_, schedule_seed_,
                  ScheduleKnowledge::kKnownSchedule, opt);
  // 1 initial + 256 per sweep.
  EXPECT_EQ(report.oracle_queries, 1 + 256);
}

}  // namespace
}  // namespace hpnn::attack
