#include "attack/finetune.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "data/synthetic.hpp"
#include "hpnn/owner.hpp"

namespace hpnn::attack {
namespace {

/// Shared fixture: one trained locked model + published artifact on a tiny
/// FashionSynth task (kept small; the full experiments live in bench/).
class FineTuneFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SyntheticConfig dc;
    dc.train_per_class = 60;
    dc.test_per_class = 15;
    dc.image_size = 16;
    dc.noise_stddev = 0.06;  // easy setting: these tests exercise the
    dc.jitter = 0.08;        // attack mechanics, not the reproduction
    dc.seed = 5;
    split_ = new data::SplitDataset(
        data::make_dataset(data::SyntheticFamily::kFashionSynth, dc));

    models::ModelConfig mc;
    mc.in_channels = 1;
    mc.image_size = 16;
    mc.init_seed = 2;
    Rng krng(99);
    key_ = new obf::HpnnKey(obf::HpnnKey::random(krng));
    sched_ = new obf::Scheduler(1234);
    model_ = new obf::LockedModel(models::Architecture::kCnn1, mc, *key_,
                                  *sched_);
    obf::OwnerTrainOptions opt;
    opt.epochs = 5;
    opt.sgd = {0.01, 0.9, 5e-4};
    report_ = new obf::OwnerTrainReport(
        obf::train_locked_model(*model_, split_->train, split_->test, opt));

    std::stringstream ss;
    obf::publish_model(ss, *model_);
    artifact_ = new obf::PublishedModel(obf::read_published_model(ss));
  }

  static void TearDownTestSuite() {
    delete artifact_;
    delete report_;
    delete model_;
    delete sched_;
    delete key_;
    delete split_;
  }

  static data::SplitDataset* split_;
  static obf::HpnnKey* key_;
  static obf::Scheduler* sched_;
  static obf::LockedModel* model_;
  static obf::OwnerTrainReport* report_;
  static obf::PublishedModel* artifact_;
};

data::SplitDataset* FineTuneFixture::split_ = nullptr;
obf::HpnnKey* FineTuneFixture::key_ = nullptr;
obf::Scheduler* FineTuneFixture::sched_ = nullptr;
obf::LockedModel* FineTuneFixture::model_ = nullptr;
obf::OwnerTrainReport* FineTuneFixture::report_ = nullptr;
obf::PublishedModel* FineTuneFixture::artifact_ = nullptr;

TEST_F(FineTuneFixture, OwnerModelIsAccurateWithKey) {
  EXPECT_GT(report_->test_accuracy, 0.8);
}

TEST_F(FineTuneFixture, NoKeyUsageCollapsesAccuracy) {
  const double nokey =
      obf::evaluate_without_key(*model_, *key_, *sched_, split_->test);
  EXPECT_LT(nokey, 0.35);  // near-chance (paper: 10-16%)
  EXPECT_LT(nokey, report_->test_accuracy - 0.4);
}

TEST_F(FineTuneFixture, ZeroThiefDataGivesChanceAccuracy) {
  Rng rng(1);
  data::Dataset empty = data::thief_subset(split_->train, 0.0, rng);
  FineTuneOptions opts;
  const auto rep = finetune_attack(*artifact_, empty, split_->test,
                                   InitStrategy::kStolenWeights, opts);
  EXPECT_EQ(rep.thief_size, 0);
  EXPECT_LT(rep.final_accuracy, 0.35);
}

TEST_F(FineTuneFixture, FineTuningImprovesWithThiefData) {
  Rng rng(2);
  data::Dataset thief = data::thief_subset(split_->train, 0.2, rng);
  FineTuneOptions opts;
  opts.epochs = 15;
  opts.sgd = {0.01, 0.9, 5e-4};
  const auto rep = finetune_attack(*artifact_, thief, split_->test,
                                   InitStrategy::kStolenWeights, opts);
  // Clearly better than the no-thief-data baseline (which is near chance).
  EXPECT_GT(rep.final_accuracy, 0.35);
}

TEST_F(FineTuneFixture, AttackStaysBelowOwnerAccuracy) {
  Rng rng(3);
  data::Dataset thief = data::thief_subset(split_->train, 0.1, rng);
  FineTuneOptions opts;
  opts.epochs = 6;
  opts.sgd = {0.01, 0.9, 5e-4};
  const auto rep = finetune_attack(*artifact_, thief, split_->test,
                                   InitStrategy::kStolenWeights, opts);
  EXPECT_LT(rep.final_accuracy, report_->test_accuracy);
}

TEST_F(FineTuneFixture, RandomAndHpnnInitPerformSimilarly) {
  // The information-leakage experiment (Sec. IV-C): both inits should land
  // in the same ballpark.
  Rng rng(4);
  data::Dataset thief = data::thief_subset(split_->train, 0.2, rng);
  FineTuneOptions opts;
  opts.epochs = 6;
  opts.sgd = {0.01, 0.9, 5e-4};
  const auto hpnn_rep = finetune_attack(*artifact_, thief, split_->test,
                                        InitStrategy::kStolenWeights, opts);
  const auto rand_rep = finetune_attack(*artifact_, thief, split_->test,
                                        InitStrategy::kRandomSmall, opts);
  EXPECT_LT(std::abs(hpnn_rep.final_accuracy - rand_rep.final_accuracy),
            0.25);
}

TEST_F(FineTuneFixture, TracksEpochAccuracyWhenAsked) {
  Rng rng(5);
  data::Dataset thief = data::thief_subset(split_->train, 0.1, rng);
  FineTuneOptions opts;
  opts.epochs = 3;
  opts.track_epoch_accuracy = true;
  const auto rep = finetune_attack(*artifact_, thief, split_->test,
                                   InitStrategy::kStolenWeights, opts);
  EXPECT_EQ(rep.epoch_accuracy.size(), 3u);
  EXPECT_EQ(rep.epoch_loss.size(), 3u);
  EXPECT_GE(rep.best_accuracy, rep.final_accuracy);
}

TEST_F(FineTuneFixture, LrSweepReturnsOnePointPerLr) {
  Rng rng(6);
  data::Dataset thief = data::thief_subset(split_->train, 0.1, rng);
  FineTuneOptions opts;
  opts.epochs = 2;
  const auto sweep =
      lr_sweep(*artifact_, thief, split_->test, {0.001, 0.01}, opts);
  ASSERT_EQ(sweep.size(), 2u);
  EXPECT_EQ(sweep[0].lr, 0.001);
  EXPECT_EQ(sweep[1].lr, 0.01);
  EXPECT_EQ(sweep[0].report.epoch_accuracy.size(), 2u);
}

TEST_F(FineTuneFixture, AdamAttackerAlsoStaysBelowOwner) {
  Rng rng(7);
  data::Dataset thief = data::thief_subset(split_->train, 0.1, rng);
  FineTuneOptions opts;
  opts.epochs = 8;
  opts.optimizer = AttackOptimizer::kAdam;
  opts.sgd.lr = 0.001;  // Adam lr
  const auto rep = finetune_attack(*artifact_, thief, split_->test,
                                   InitStrategy::kStolenWeights, opts);
  EXPECT_GT(rep.final_accuracy, 0.15);  // it does learn something
  EXPECT_LT(rep.final_accuracy, report_->test_accuracy);
}

TEST_F(FineTuneFixture, LrDecayScheduleRuns) {
  Rng rng(8);
  data::Dataset thief = data::thief_subset(split_->train, 0.1, rng);
  FineTuneOptions opts;
  opts.epochs = 4;
  opts.lr_step = 2;
  opts.lr_gamma = 0.1;
  opts.track_epoch_accuracy = true;
  const auto rep = finetune_attack(*artifact_, thief, split_->test,
                                   InitStrategy::kStolenWeights, opts);
  EXPECT_EQ(rep.epoch_accuracy.size(), 4u);
}

TEST(FineTuneTest, InitStrategyNames) {
  EXPECT_STREQ(init_strategy_name(InitStrategy::kStolenWeights),
               "HPNN fine-tuning");
  EXPECT_STREQ(init_strategy_name(InitStrategy::kRandomSmall),
               "random fine-tuning");
}

}  // namespace
}  // namespace hpnn::attack
