// Campaign-coverage regression: the defend-bench harness must cover every
// registered scheme with every campaign attack. If a scheme is registered
// without campaign coverage — or an attack is added without wiring — these
// tests fail, which is the enforcement the lock-scheme registry relies on.
#include "attack/campaign.hpp"

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "core/error.hpp"
#include "data/synthetic.hpp"

namespace hpnn::attack {
namespace {

data::SplitDataset tiny_split() {
  data::SyntheticConfig dc;
  dc.train_per_class = 8;
  dc.test_per_class = 4;
  dc.image_size = 12;
  dc.seed = 42;
  return data::make_dataset(data::SyntheticFamily::kFashionSynth, dc);
}

DefenseCampaignOptions tiny_options() {
  DefenseCampaignOptions opt;
  opt.arch = models::Architecture::kMlp;
  opt.owner_epochs = 1;
  opt.budgets = {1};
  opt.oracle_samples = 16;
  return opt;
}

TEST(DefenseCampaignTest, EveryRegisteredSchemeGetsEveryAttack) {
  const data::SplitDataset split = tiny_split();
  const DefenseCampaignReport report =
      run_defense_campaign(split, tiny_options());

  const std::vector<std::string> tags = obf::registered_scheme_tags();
  const std::vector<std::string> attacks{
      kAttackFineTune, kAttackKeyRecovery, kAttackDistillation};
  ASSERT_EQ(report.baselines.size(), tags.size());
  ASSERT_EQ(report.cells.size(), tags.size() * attacks.size());

  std::set<std::pair<std::string, std::string>> covered;
  for (const DefenseCell& cell : report.cells) {
    covered.emplace(cell.scheme, cell.attack);
  }
  for (const std::string& tag : tags) {
    for (const std::string& attack : attacks) {
      EXPECT_TRUE(covered.count({tag, attack}))
          << "scheme '" << tag << "' has no campaign coverage for attack '"
          << attack << "' — wire it into run_attack_cell";
    }
  }
}

TEST(DefenseCampaignTest, BaselinesAnchorTheCurves) {
  const data::SplitDataset split = tiny_split();
  const DefenseCampaignReport report =
      run_defense_campaign(split, tiny_options());
  EXPECT_DOUBLE_EQ(report.chance_accuracy, 0.1);
  EXPECT_GT(report.thief_size, 0);
  for (const SchemeBaseline& b : report.baselines) {
    EXPECT_GE(b.protected_accuracy, 0.0);
    EXPECT_LE(b.protected_accuracy, 1.0);
    EXPECT_GE(b.no_key_accuracy, 0.0);
    EXPECT_LE(b.no_key_accuracy, 1.0);
    EXPECT_GT(b.locked_neurons, 0);
  }
  for (const DefenseCell& c : report.cells) {
    EXPECT_GE(c.attacker_accuracy, 0.0);
    EXPECT_LE(c.attacker_accuracy, 1.0);
    EXPECT_GT(c.work, 0);
  }
}

TEST(DefenseCampaignTest, JsonOutputIsDeterministic) {
  const data::SplitDataset split = tiny_split();
  DefenseCampaignOptions opt = tiny_options();
  opt.attacks = {kAttackFineTune};  // one attack keeps the repeat cheap

  std::ostringstream a;
  write_defense_json(a, run_defense_campaign(split, opt));
  std::ostringstream b;
  write_defense_json(b, run_defense_campaign(split, opt));
  EXPECT_EQ(a.str(), b.str());

  // Single-line JSON with the shared bench envelope, ready for the
  // tail -n 1 convention the bench-smoke CI leg uses.
  const std::string json = a.str();
  EXPECT_EQ(json.find("{\"bench\":\"defense\""), 0u);
  EXPECT_EQ(json.back(), '\n');
  EXPECT_EQ(json.find('\n'), json.size() - 1);
  EXPECT_NE(json.find("\"curves\":["), std::string::npos);
  EXPECT_NE(json.find("\"baselines\":["), std::string::npos);
}

TEST(DefenseCampaignTest, UnknownSchemeFailsLoudly) {
  const data::SplitDataset split = tiny_split();
  DefenseCampaignOptions opt = tiny_options();
  opt.schemes = {"quantum-lock"};
  EXPECT_THROW((void)run_defense_campaign(split, opt), SerializationError);
}

TEST(DefenseCampaignTest, UnknownAttackFailsLoudly) {
  const data::SplitDataset split = tiny_split();
  DefenseCampaignOptions opt = tiny_options();
  opt.schemes = {obf::kSignLockTag};
  opt.attacks = {"rowhammer"};
  EXPECT_THROW((void)run_defense_campaign(split, opt), UsageError);
}

TEST(DefenseCampaignTest, RejectsNonPositiveBudgets) {
  const data::SplitDataset split = tiny_split();
  DefenseCampaignOptions opt = tiny_options();
  opt.budgets = {0};
  EXPECT_THROW((void)run_defense_campaign(split, opt), InvariantError);
  opt.budgets.clear();
  EXPECT_THROW((void)run_defense_campaign(split, opt), InvariantError);
}

}  // namespace
}  // namespace hpnn::attack
