#include "attack/distillation.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/error.hpp"
#include "data/synthetic.hpp"
#include "hpnn/owner.hpp"

namespace hpnn::attack {
namespace {

class DistillationFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SyntheticConfig dc;
    dc.train_per_class = 60;
    dc.test_per_class = 15;
    dc.image_size = 16;
    dc.noise_stddev = 0.06;
    dc.jitter = 0.08;
    dc.seed = 21;
    split_ = new data::SplitDataset(
        data::make_dataset(data::SyntheticFamily::kFashionSynth, dc));

    models::ModelConfig mc;
    mc.in_channels = 1;
    mc.image_size = 16;
    mc.init_seed = 6;
    Rng krng(17);
    key_ = new obf::HpnnKey(obf::HpnnKey::random(krng));
    sched_ = new obf::Scheduler(808);
    model_ = new obf::LockedModel(models::Architecture::kCnn1, mc, *key_,
                                  *sched_);
    obf::OwnerTrainOptions opt;
    opt.epochs = 6;
    opt.sgd = {0.01, 0.9, 5e-4};
    (void)obf::train_locked_model(*model_, split_->train, split_->test, opt);

    std::stringstream ss;
    obf::publish_model(ss, *model_);
    artifact_ = new obf::PublishedModel(obf::read_published_model(ss));
  }

  static void TearDownTestSuite() {
    delete artifact_;
    delete model_;
    delete sched_;
    delete key_;
    delete split_;
  }

  static data::SplitDataset* split_;
  static obf::HpnnKey* key_;
  static obf::Scheduler* sched_;
  static obf::LockedModel* model_;
  static obf::PublishedModel* artifact_;
};

data::SplitDataset* DistillationFixture::split_ = nullptr;
obf::HpnnKey* DistillationFixture::key_ = nullptr;
obf::Scheduler* DistillationFixture::sched_ = nullptr;
obf::LockedModel* DistillationFixture::model_ = nullptr;
obf::PublishedModel* DistillationFixture::artifact_ = nullptr;

TEST_F(DistillationFixture, AuthorizedColluderExtractsTheModel) {
  // The colluder has a working (keyed) model as the oracle and unlabeled
  // transfer inputs: the extracted student approaches the teacher — DRM
  // cannot prevent this, which is why it is explicitly out of scope for
  // HPNN (docs/threat_model.md).
  TeacherOracle keyed_teacher = [&](const Tensor& x) {
    model_->network().set_training(false);
    return model_->network().forward(x);
  };
  Rng rng(1);
  const data::Dataset transfer =
      data::thief_subset(split_->train, 0.5, rng);  // unlabeled inputs
  DistillationOptions opt;
  opt.epochs = 25;
  const auto report = distill_student(*artifact_, keyed_teacher, transfer,
                                      split_->test, opt);
  EXPECT_GT(report.teacher_accuracy, 0.8);
  EXPECT_GT(report.student_accuracy, report.teacher_accuracy - 0.25);
}

TEST_F(DistillationFixture, LockedTeacherYieldsUselessStudent) {
  // The same attack with a no-key oracle (the stolen weights run unlocked):
  // garbage in, garbage out.
  auto stolen = obf::instantiate_baseline(*artifact_);
  TeacherOracle locked_teacher = [&](const Tensor& x) {
    stolen->set_training(false);
    return stolen->forward(x);
  };
  Rng rng(2);
  const data::Dataset transfer = data::thief_subset(split_->train, 0.5, rng);
  DistillationOptions opt;
  opt.epochs = 15;
  const auto report = distill_student(*artifact_, locked_teacher, transfer,
                                      split_->test, opt);
  EXPECT_LT(report.teacher_accuracy, 0.4);
  EXPECT_LT(report.student_accuracy, 0.5);
}

TEST_F(DistillationFixture, Validation) {
  DistillationOptions opt;
  EXPECT_THROW(distill_student(*artifact_, nullptr, split_->train,
                               split_->test, opt),
               InvariantError);
  Rng rng(3);
  const data::Dataset empty = data::thief_subset(split_->train, 0.0, rng);
  TeacherOracle oracle = [&](const Tensor& x) {
    return model_->network().forward(x);
  };
  EXPECT_THROW(distill_student(*artifact_, oracle, empty, split_->test, opt),
               InvariantError);
}

TEST(SoftTargetLossTest, MatchesHardLabelGradientAtT1) {
  // With one-hot targets and T=1 the soft loss reduces to plain CE.
  nn::SoftTargetCrossEntropy soft;
  nn::SoftmaxCrossEntropy hard;
  Rng rng(4);
  const Tensor logits = Tensor::normal(Shape{3, 5}, rng);
  Tensor onehot(Shape{3, 5});
  const std::vector<std::int64_t> labels{1, 4, 0};
  for (std::int64_t i = 0; i < 3; ++i) {
    onehot.at(i, labels[static_cast<std::size_t>(i)]) = 1.0f;
  }
  const float soft_loss = soft.forward(logits, onehot, 1.0);
  const float hard_loss = hard.forward(logits, labels);
  EXPECT_NEAR(soft_loss, hard_loss, 1e-5);
  EXPECT_TRUE(soft.backward().allclose(hard.backward(), 1e-5f, 1e-6f));
}

TEST(SoftTargetLossTest, GradientMatchesCentralDifference) {
  nn::SoftTargetCrossEntropy loss;
  Rng rng(5);
  Tensor logits = Tensor::normal(Shape{2, 4}, rng);
  Tensor targets(Shape{2, 4}, 0.25f);  // uniform soft targets
  (void)loss.forward(logits, targets, 3.0);
  const Tensor analytic = loss.backward();
  const double eps = 1e-3;
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    Tensor lp = logits;
    lp.at(i) += static_cast<float>(eps);
    Tensor lm = logits;
    lm.at(i) -= static_cast<float>(eps);
    nn::SoftTargetCrossEntropy probe;
    const double plus = probe.forward(lp, targets, 3.0);
    const double minus = probe.forward(lm, targets, 3.0);
    // backward() includes the T^2 compensation; central difference of the
    // raw loss gives grad/T^2.
    EXPECT_NEAR(analytic.at(i) / (3.0 * 3.0),
                (plus - minus) / (2 * eps), 1e-4);
  }
}

TEST(SoftTargetLossTest, Validation) {
  nn::SoftTargetCrossEntropy loss;
  Tensor logits(Shape{2, 3});
  Tensor bad(Shape{2, 4});
  EXPECT_THROW(loss.forward(logits, bad), InvariantError);
  EXPECT_THROW(loss.forward(logits, logits, 0.0), InvariantError);
  nn::SoftTargetCrossEntropy fresh;
  EXPECT_THROW(fresh.backward(), InvariantError);
}

}  // namespace
}  // namespace hpnn::attack
