#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "args.hpp"
#include "commands.hpp"
#include "core/error.hpp"

namespace hpnn::cli {
namespace {

int run(const std::vector<std::string>& tokens, std::string& output) {
  std::ostringstream os;
  const int rc = run_command(tokens, os);
  output = os.str();
  return rc;
}

// ---------------------------------------------------------------- args

TEST(ArgsTest, ParsesCommandFlagsAndPositionals) {
  const Args args = parse_args(
      {"train", "--epochs", "5", "--lr=0.01", "extra1", "extra2"});
  EXPECT_EQ(args.command, "train");
  EXPECT_EQ(args.get_int("epochs", 0), 5);
  EXPECT_EQ(args.get_double("lr", 0.0), 0.01);
  EXPECT_EQ(args.positional,
            (std::vector<std::string>{"extra1", "extra2"}));
}

TEST(ArgsTest, MissingValueThrows) {
  EXPECT_THROW(parse_args({"train", "--epochs"}), Error);
}

TEST(ArgsTest, RequireThrowsWithFlagName) {
  const Args args = parse_args({"train"});
  try {
    (void)args.require("out");
    FAIL();
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("--out"), std::string::npos);
  }
}

TEST(ArgsTest, MalformedNumbersThrow) {
  const Args args = parse_args({"x", "--n", "12abc", "--f", "1.5x"});
  EXPECT_THROW(args.get_int("n", 0), Error);
  EXPECT_THROW(args.get_double("f", 0.0), Error);
}

TEST(ArgsTest, EmptyTokensGiveEmptyCommand) {
  EXPECT_TRUE(parse_args({}).command.empty());
}

// ---------------------------------------------------------------- commands

// Exit codes follow the error taxonomy: 1 generic, 2 usage, 3 bad
// artifact/data, 4 key/integrity, 5 timeout, 6 unavailable, 7 retries
// exhausted. The tests below pin the mapping so scripts can rely on it.
TEST(CliTest, NoCommandPrintsUsageAndFails) {
  std::string out;
  EXPECT_EQ(run({}, out), 2);
  EXPECT_NE(out.find("commands:"), std::string::npos);
}

TEST(CliTest, HelpSucceeds) {
  std::string out;
  EXPECT_EQ(run({"help"}, out), 0);
  EXPECT_NE(out.find("keygen"), std::string::npos);
}

TEST(CliTest, UnknownCommandFails) {
  std::string out;
  EXPECT_EQ(run({"frobnicate"}, out), 2);
  EXPECT_NE(out.find("unknown command"), std::string::npos);
}

TEST(CliTest, KeygenIsDeterministicPerSeed) {
  std::string a, b, c;
  EXPECT_EQ(run({"keygen", "--seed", "5"}, a), 0);
  EXPECT_EQ(run({"keygen", "--seed", "5"}, b), 0);
  EXPECT_EQ(run({"keygen", "--seed", "6"}, c), 0);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a.find("fingerprint:"), std::string::npos);
}

TEST(CliTest, KeygenWithModelIdDerivesSubkey) {
  std::string out;
  EXPECT_EQ(run({"keygen", "--seed", "5", "--model-id", "m1"}, out), 0);
  EXPECT_NE(out.find("model key (m1):"), std::string::npos);
  EXPECT_NE(out.find("schedule seed (m1):"), std::string::npos);
}

TEST(CliTest, OverheadReportsXorGates) {
  std::string out;
  EXPECT_EQ(run({"overhead"}, out), 0);
  EXPECT_NE(out.find("4096"), std::string::npos);
}

TEST(CliTest, TrainEvalAttackInspectRoundTrip) {
  // Tiny end-to-end run through the CLI surface (kept fast: 12x12 images,
  // 20 samples/class, 2 epochs).
  const std::string key(64, 'a');
  const std::string model_path = ::testing::TempDir() + "/cli_model.hpnn";
  const std::vector<std::string> common = {
      "--dataset", "fashion", "--img", "16", "--tpc", "20",
      "--testpc",  "10"};

  std::vector<std::string> train_cmd = {
      "train", "--arch", "CNN1", "--key", key, "--out", model_path,
      "--epochs", "2"};
  train_cmd.insert(train_cmd.end(), common.begin(), common.end());
  std::string out;
  ASSERT_EQ(run(train_cmd, out), 0) << out;
  EXPECT_NE(out.find("published artifact"), std::string::npos);

  std::vector<std::string> inspect_cmd = {"inspect", "--model", model_path};
  ASSERT_EQ(run(inspect_cmd, out), 0) << out;
  EXPECT_NE(out.find("architecture: CNN1"), std::string::npos);

  std::vector<std::string> eval_keyed = {"eval", "--model", model_path,
                                         "--key", key};
  eval_keyed.insert(eval_keyed.end(), common.begin(), common.end());
  ASSERT_EQ(run(eval_keyed, out), 0) << out;
  EXPECT_NE(out.find("with key"), std::string::npos);

  std::vector<std::string> eval_nokey = {"eval", "--model", model_path};
  eval_nokey.insert(eval_nokey.end(), common.begin(), common.end());
  ASSERT_EQ(run(eval_nokey, out), 0) << out;
  EXPECT_NE(out.find("no key"), std::string::npos);

  std::vector<std::string> eval_device = {
      "eval", "--model", model_path, "--key", key, "--device", "1"};
  eval_device.insert(eval_device.end(), common.begin(), common.end());
  ASSERT_EQ(run(eval_device, out), 0) << out;
  EXPECT_NE(out.find("trusted-device accuracy"), std::string::npos);

  std::vector<std::string> attack_cmd = {
      "attack", "--model", model_path, "--alpha", "0.2", "--epochs", "2"};
  attack_cmd.insert(attack_cmd.end(), common.begin(), common.end());
  ASSERT_EQ(run(attack_cmd, out), 0) << out;
  EXPECT_NE(out.find("attack accuracy"), std::string::npos);
}

TEST(CliTest, DefendBenchEmitsCurvesAndJson) {
  // Smoke-scale defend-bench: one budget, tiny MLP, all registered schemes
  // and attacks; the JSON curve file must land where --json-out points.
  const std::string json_path =
      ::testing::TempDir() + "/cli_bench_defense.json";
  std::string out;
  ASSERT_EQ(run({"defend-bench", "--dataset", "fashion", "--arch", "MLP",
                 "--img", "12", "--tpc", "6", "--testpc", "3", "--epochs",
                 "1", "--budgets", "1", "--oracle-samples", "16",
                 "--json-out", json_path, "--json", "1"},
                out),
            0)
      << out;
  EXPECT_NE(out.find("defense benchmark"), std::string::npos);
  EXPECT_NE(out.find("scheme sign-lock"), std::string::npos);
  EXPECT_NE(out.find("scheme weight-stream"), std::string::npos);
  EXPECT_NE(out.find("\"bench\":\"defense\""), std::string::npos);

  std::ifstream is(json_path);
  ASSERT_TRUE(is.good()) << "defend-bench did not write " << json_path;
  std::string json;
  std::getline(is, json);
  EXPECT_EQ(json.find("{\"bench\":\"defense\""), 0u);
  EXPECT_NE(json.find("\"curves\":["), std::string::npos);
}

TEST(CliTest, DefendBenchRejectsBadLists) {
  std::string out;
  EXPECT_EQ(run({"defend-bench", "--dataset", "fashion", "--img", "12",
                 "--tpc", "6", "--testpc", "3", "--budgets", "0"},
                out),
            2);
  EXPECT_EQ(run({"defend-bench", "--dataset", "fashion", "--img", "12",
                 "--tpc", "6", "--testpc", "3", "--budgets", "nope"},
                out),
            2);
}

TEST(CliTest, InspectPrintsLockScheme) {
  const std::string key(64, 'b');
  const std::string model_path =
      ::testing::TempDir() + "/cli_scheme_model.hpnn";
  std::string out;
  ASSERT_EQ(run({"train", "--arch", "MLP", "--key", key, "--out",
                 model_path, "--epochs", "1", "--dataset", "fashion",
                 "--img", "12", "--tpc", "4", "--testpc", "2"},
                out),
            0)
      << out;
  ASSERT_EQ(run({"inspect", "--model", model_path}, out), 0) << out;
  EXPECT_NE(out.find("lock scheme:  sign-lock"), std::string::npos);
}

TEST(CliTest, DatasetExportAndReuse) {
  const std::string prefix = ::testing::TempDir() + "/cli_ds";
  std::string out;
  ASSERT_EQ(run({"dataset", "--dataset", "svhn", "--out", prefix, "--tpc",
                 "5", "--testpc", "3", "--img", "16"},
                out),
            0)
      << out;
  EXPECT_NE(out.find(".train.hpds"), std::string::npos);

  // Train against the exported files instead of regenerating.
  const std::string key(64, 'b');
  const std::string model_path = ::testing::TempDir() + "/cli_ds_model.hpnn";
  ASSERT_EQ(run({"train", "--arch", "CNN3", "--width", "0.5", "--key", key,
                 "--out", model_path, "--epochs", "1", "--train-file",
                 prefix + ".train.hpds", "--test-file",
                 prefix + ".test.hpds"},
                out),
            0)
      << out;
  EXPECT_NE(out.find("published artifact"), std::string::npos);
}

TEST(CliTest, StaticQuantTrainEmbedsScales) {
  const std::string key(64, 'c');
  const std::string model_path =
      ::testing::TempDir() + "/cli_sq_model.hpnn";
  std::string out;
  ASSERT_EQ(run({"train", "--arch", "CNN1", "--dataset", "fashion", "--key",
                 key, "--out", model_path, "--epochs", "1", "--img", "16",
                 "--tpc", "10", "--testpc", "5", "--static-quant", "1"},
                out),
            0)
      << out;
  EXPECT_NE(out.find("static activation scales"), std::string::npos);
}

TEST(CliTest, BlockedPolicyRoundTripsThroughCli) {
  const std::string key(64, 'd');
  const std::string model_path =
      ::testing::TempDir() + "/cli_policy_model.hpnn";
  const std::vector<std::string> common = {
      "--dataset", "fashion", "--img", "16", "--tpc", "20",
      "--testpc",  "10",      "--policy", "blocked"};
  std::vector<std::string> train_cmd = {
      "train", "--arch", "CNN1", "--key", key, "--out", model_path,
      "--epochs", "1"};
  train_cmd.insert(train_cmd.end(), common.begin(), common.end());
  std::string out;
  ASSERT_EQ(run(train_cmd, out), 0) << out;

  std::vector<std::string> eval_cmd = {"eval", "--model", model_path,
                                       "--key", key};
  eval_cmd.insert(eval_cmd.end(), common.begin(), common.end());
  ASSERT_EQ(run(eval_cmd, out), 0) << out;
  EXPECT_NE(out.find("with key"), std::string::npos);

  EXPECT_EQ(run({"train", "--arch", "CNN1", "--dataset", "fashion",
                 "--key", key, "--out", model_path, "--policy", "zigzag"},
                out),
            1);
}

TEST(CliTest, InspectSummaryPrintsLayerTable) {
  const std::string key(64, 'e');
  const std::string model_path =
      ::testing::TempDir() + "/cli_summary_model.hpnn";
  std::string out;
  ASSERT_EQ(run({"train", "--arch", "LeNet5", "--dataset", "fashion",
                 "--key", key, "--out", model_path, "--epochs", "1",
                 "--img", "16", "--tpc", "10", "--testpc", "5"},
                out),
            0)
      << out;
  ASSERT_EQ(
      run({"inspect", "--model", model_path, "--summary", "1"}, out), 0)
      << out;
  EXPECT_NE(out.find("Conv2d"), std::string::npos);
  EXPECT_NE(out.find("total parameters:"), std::string::npos);
}

TEST(CliTest, ZooPublishListEvalFlow) {
  const std::string zoo_dir = ::testing::TempDir() + "/cli_zoo_store";
  std::filesystem::remove_all(zoo_dir);
  const std::string key(64, 'f');
  const std::vector<std::string> common = {
      "--dataset", "fashion", "--img", "16", "--tpc", "15",
      "--testpc",  "5"};

  std::vector<std::string> train_cmd = {
      "train", "--arch", "CNN1", "--key", key, "--zoo", zoo_dir,
      "--name", "fashion-v1", "--epochs", "1"};
  train_cmd.insert(train_cmd.end(), common.begin(), common.end());
  std::string out;
  ASSERT_EQ(run(train_cmd, out), 0) << out;
  EXPECT_NE(out.find("published 'fashion-v1' to zoo"), std::string::npos);

  ASSERT_EQ(run({"zoo", "--zoo", zoo_dir}, out), 0) << out;
  EXPECT_NE(out.find("fashion-v1"), std::string::npos);
  EXPECT_NE(out.find("sha256:"), std::string::npos);

  std::vector<std::string> eval_cmd = {"eval", "--zoo", zoo_dir, "--name",
                                       "fashion-v1", "--key", key};
  eval_cmd.insert(eval_cmd.end(), common.begin(), common.end());
  ASSERT_EQ(run(eval_cmd, out), 0) << out;
  EXPECT_NE(out.find("with key"), std::string::npos);

  EXPECT_EQ(run({"eval", "--zoo", zoo_dir, "--name", "ghost", "--dataset",
                 "fashion"},
                out),
            3);
}

TEST(CliTest, ProvisionFleetFromZoo) {
  const std::string zoo_dir = ::testing::TempDir() + "/cli_provision_zoo";
  std::filesystem::remove_all(zoo_dir);
  const std::string key(64, 'a');

  std::string out;
  ASSERT_EQ(run({"train", "--arch", "CNN1", "--key", key, "--zoo", zoo_dir,
                 "--name", "prov-v1", "--epochs", "1", "--dataset",
                 "fashion", "--img", "16", "--tpc", "15", "--testpc", "5"},
                out),
            0)
      << out;

  ASSERT_EQ(run({"provision", "--zoo", zoo_dir, "--name", "prov-v1",
                 "--key", key, "--model-id", "prov-v1", "--devices", "3",
                 "--probes", "8", "--json", "1"},
                out),
            0)
      << out;
  EXPECT_NE(out.find("provisioned 3/3"), std::string::npos);
  EXPECT_NE(out.find("attested 3/3"), std::string::npos);
  EXPECT_NE(out.find("\"fleet\":{"), std::string::npos);

  // Missing required flags is a usage error.
  EXPECT_EQ(run({"provision", "--zoo", zoo_dir, "--name", "prov-v1",
                 "--key", key},
                out),
            2);

  // The deployment shape: the owner records a challenge; a vendor holding
  // the wrong master key cannot attest a fleet against it (exit 4), while
  // the true master replays it cleanly.
  const std::string challenge_path =
      ::testing::TempDir() + "/cli_provision_challenge.bin";
  ASSERT_EQ(run({"provision", "--zoo", zoo_dir, "--name", "prov-v1",
                 "--key", key, "--model-id", "prov-v1", "--devices", "1",
                 "--probes", "8", "--challenge-out", challenge_path},
                out),
            0)
      << out;
  ASSERT_EQ(run({"provision", "--zoo", zoo_dir, "--name", "prov-v1",
                 "--key", key, "--model-id", "prov-v1", "--devices", "2",
                 "--probes", "8", "--challenge", challenge_path},
                out),
            0)
      << out;
  const std::string wrong_key(64, 'b');
  EXPECT_EQ(run({"provision", "--zoo", zoo_dir, "--name", "prov-v1",
                 "--key", wrong_key, "--model-id", "prov-v1", "--devices",
                 "2", "--probes", "8", "--challenge", challenge_path},
                out),
            4)
      << out;
  EXPECT_NE(out.find("attestation failed"), std::string::npos);
}

TEST(CliTest, FaultCampaignReportsCurveAndJson) {
  const std::string key(64, '1');
  const std::string model_path =
      ::testing::TempDir() + "/cli_fault_model.hpnn";
  const std::vector<std::string> common = {
      "--dataset", "fashion", "--img", "16", "--tpc", "20",
      "--testpc",  "10"};

  std::vector<std::string> train_cmd = {
      "train", "--arch", "CNN1", "--key", key, "--out", model_path,
      "--epochs", "1"};
  train_cmd.insert(train_cmd.end(), common.begin(), common.end());
  std::string out;
  ASSERT_EQ(run(train_cmd, out), 0) << out;

  std::vector<std::string> campaign_cmd = {
      "fault-campaign", "--model", model_path, "--key", key,
      "--bits", "0,1", "--trials", "1", "--scale-error", "1.0",
      "--json", "1"};
  campaign_cmd.insert(campaign_cmd.end(), common.begin(), common.end());
  ASSERT_EQ(run(campaign_cmd, out), 0) << out;
  EXPECT_NE(out.find("baseline accuracy"), std::string::npos);
  EXPECT_NE(out.find("flipped-bits"), std::string::npos);
  EXPECT_NE(out.find("scale corruption"), std::string::npos);
  EXPECT_NE(out.find("\"bench\":\"fault_campaign\""), std::string::npos);

  std::vector<std::string> bad_bits = {
      "fault-campaign", "--model", model_path, "--key", key,
      "--bits", "0,900"};
  bad_bits.insert(bad_bits.end(), common.begin(), common.end());
  EXPECT_EQ(run(bad_bits, out), 1);
  EXPECT_NE(out.find("error:"), std::string::npos);
}

TEST(CliTest, FaultCampaignRequiresKey) {
  std::string out;
  EXPECT_EQ(run({"fault-campaign", "--model", "/nonexistent.hpnn",
                 "--dataset", "fashion"},
                out),
            3);
  EXPECT_NE(out.find("error:"), std::string::npos);
}

TEST(CliTest, TrainRejectsBadKey) {
  std::string out;
  EXPECT_EQ(run({"train", "--arch", "CNN1", "--dataset", "fashion",
                 "--key", "nothex", "--out", "/tmp/x.hpnn"},
                out),
            4);
  EXPECT_NE(out.find("error:"), std::string::npos);
}

TEST(CliTest, EvalRejectsMissingFile) {
  std::string out;
  EXPECT_EQ(run({"eval", "--model", "/nonexistent.hpnn", "--dataset",
                 "fashion"},
                out),
            3);
  EXPECT_NE(out.find("error:"), std::string::npos);
}

TEST(CliTest, BadDatasetNameFails) {
  std::string out;
  // The attack command reads the stolen model before parsing the dataset
  // name, so the missing artifact surfaces first as a serialization error.
  EXPECT_EQ(run({"attack", "--model", "/tmp/none", "--dataset", "imagenet"},
                out),
            3);
}

TEST(CliTest, MissingOptionValueIsUsageError) {
  std::string out;
  EXPECT_EQ(run({"keygen", "--seed"}, out), 2);
  EXPECT_NE(out.find("error:"), std::string::npos);
}

TEST(CliTest, ServeSimRunsCleanPoolDeterministically) {
  std::string a, b;
  const std::vector<std::string> cmd = {
      "serve-sim", "--requests", "6",   "--batch", "1",
      "--seed",    "11",         "--replicas", "2",
      "--key-seu-rate", "0.0",   "--model-seed", "21"};
  ASSERT_EQ(run(cmd, a), 0) << a;
  ASSERT_EQ(run(cmd, b), 0) << b;
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("served 6/6 requests (0 wrong"), std::string::npos) << a;
}

TEST(CliTest, ServeSimSurvivesKeySeusAndEmitsJson) {
  std::string out;
  ASSERT_EQ(run({"serve-sim", "--requests", "10", "--batch", "1", "--seed",
                 "7", "--replicas", "3", "--key-seu-rate", "0.3",
                 "--model-seed", "21", "--json", "1"},
                out),
            0)
      << out;
  EXPECT_NE(out.find("0 wrong"), std::string::npos) << out;
  EXPECT_NE(out.find("\"bench\":\"serve_chaos\""), std::string::npos);
  EXPECT_NE(out.find("\"wrong\":0"), std::string::npos) << out;
}

TEST(CliTest, ServeSimRejectsBadPolicyNames) {
  std::string out;
  EXPECT_EQ(run({"serve-sim", "--degradation", "warp-core"}, out), 1);
  EXPECT_NE(out.find("unknown degradation policy"), std::string::npos);
  EXPECT_EQ(run({"serve-sim", "--verify", "vibes"}, out), 1);
  EXPECT_NE(out.find("unknown verify mode"), std::string::npos);
}

}  // namespace
}  // namespace hpnn::cli
