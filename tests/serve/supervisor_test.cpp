// ServingSupervisor behavior on a simulated clock: happy-path bitwise
// stability, the exact analytic recovery trace for key-store SEUs, witness
// arbitration of datapath faults, and every degradation/exhaustion path of
// the serving error taxonomy.
#include "serve/supervisor.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <mutex>
#include <vector>

#include "core/error.hpp"
#include "core/metrics.hpp"
#include "core/threadpool.hpp"
#include "hw/fault.hpp"
#include "hpnn/keychain.hpp"
#include "serve/chaos.hpp"

namespace hpnn::serve {
namespace {

std::uint64_t counter_value(const char* name) {
  if (!metrics::enabled()) {
    return 0;
  }
  return metrics::MetricsRegistry::instance().counter(name).value();
}

/// Builds a supervisor over the deterministic chaos model bundle, wiring
/// per-replica FaultPlans through the provision hook (the injectors outlive
/// the devices; the hook can run concurrently from maintenance workers).
struct Harness {
  ChaosModelBundle bundle = make_chaos_model(/*seed=*/33);
  SimulatedClock clock{0};
  std::vector<std::unique_ptr<hw::FaultInjector>> injectors;
  std::mutex injectors_mutex;
  std::unique_ptr<ServingSupervisor> supervisor;
  std::unique_ptr<hw::TrustedDevice> reference;

  void start(SupervisorConfig config,
             std::vector<ChaosReplicaPlan> plans = {}) {
    config.clock = &clock;
    config.provision = [this, plans](hw::TrustedDevice& device,
                                     std::size_t replica, bool reprovision) {
      if (replica >= plans.size()) {
        return;
      }
      const auto& slot = reprovision ? plans[replica].after_reprovision
                                     : plans[replica].initial;
      if (!slot.has_value()) {
        return;
      }
      std::lock_guard<std::mutex> lock(injectors_mutex);
      injectors.push_back(std::make_unique<hw::FaultInjector>(*slot));
      device.attach_fault_injector(injectors.back().get());
    };
    if (metrics::enabled()) {
      metrics::MetricsRegistry::instance().reset();
    }
    supervisor = std::make_unique<ServingSupervisor>(
        bundle.master, bundle.model_id, bundle.artifact, bundle.challenge,
        config);
    reference = std::make_unique<hw::TrustedDevice>(
        obf::derive_model_key(bundle.master, bundle.model_id),
        obf::derive_schedule_seed(bundle.master, bundle.model_id),
        config.device);
    reference->load_model(bundle.artifact);
  }

  Tensor batch(std::uint64_t seed, std::int64_t n = 2) const {
    Rng rng(seed);
    return Tensor::normal(Shape{n, bundle.artifact.in_channels,
                                bundle.artifact.image_size,
                                bundle.artifact.image_size},
                          rng, 0.0f, 0.25f);
  }
};

TEST(SupervisorTest, HealthyPoolMatchesReferenceBitwise) {
  Harness h;
  SupervisorConfig config;
  config.replicas = 2;
  h.start(config);

  const Tensor images = h.batch(1, 3);
  const Tensor expected_logits = h.reference->infer(images);

  const RequestResult first = h.supervisor->submit(images);
  EXPECT_EQ(first.attempts, 1);
  EXPECT_FALSE(first.degraded);
  EXPECT_TRUE(bitwise_equal(first.logits, expected_logits));
  EXPECT_EQ(first.classes, h.reference->classify(images));

  // Replica rotation must not change the answer: healthy replicas are
  // bit-identical executors of the same sealed key.
  const RequestResult second = h.supervisor->submit(images);
  EXPECT_NE(second.replica, first.replica);
  EXPECT_TRUE(bitwise_equal(second.logits, expected_logits));
}

TEST(SupervisorTest, KeySeuRecoveryFollowsTheAnalyticTrace) {
  // Two of four replicas start with a single flipped sealed-key bit. The
  // analytic trace: request 1 lands on replica 0 (integrity pre-check
  // quarantines it), retries onto replica 1 after maintenance re-provisions
  // replica 0 (quarantining replica 1 the same way), and succeeds on
  // replica 2 at attempt 3. Every later request is a clean single attempt.
  Harness h;
  SupervisorConfig config;
  config.replicas = 4;
  config.retry.jitter = 0.0;  // exact virtual-time arithmetic below
  std::vector<ChaosReplicaPlan> plans(2);
  plans[0].initial = hw::FaultPlan{};
  plans[0].initial->key_bits = {17};
  plans[1].initial = hw::FaultPlan{};
  plans[1].initial->key_bits = {203};
  h.start(config, plans);

  constexpr int kRequests = 6;
  int total_attempts = 0;
  for (int r = 0; r < kRequests; ++r) {
    h.clock.advance(100);
    const Tensor images = h.batch(100 + static_cast<std::uint64_t>(r));
    const RequestResult result = h.supervisor->submit(images);
    total_attempts += result.attempts;
    EXPECT_EQ(result.classes, h.reference->classify(images)) << "request " << r;
    EXPECT_EQ(result.attempts, r == 0 ? 3 : 1) << "request " << r;
    EXPECT_FALSE(result.degraded);
    if (r == 0) {
      EXPECT_EQ(result.replica, 2u);
      // Two exact backoff sleeps: 500us then 1000us (jitter disabled).
      EXPECT_EQ(result.latency_us, 1500u);
    }
  }

  EXPECT_EQ(total_attempts, kRequests + 2);
  const PoolStats stats = h.supervisor->pool().stats();
  EXPECT_EQ(stats.quarantines, 2u);
  EXPECT_EQ(stats.reprovisions, 2u);
  EXPECT_EQ(stats.reprovision_failures, 0u);
  EXPECT_EQ(stats.probes, 0u);       // quarantine skips the probe path
  EXPECT_EQ(stats.breaker_trips, 0u);
  EXPECT_EQ(h.supervisor->pool().reprovision_count(0), 1u);
  EXPECT_EQ(h.supervisor->pool().reprovision_count(1), 1u);
  EXPECT_EQ(h.supervisor->pool().admitting_count(), 4u);

  if (metrics::enabled()) {
    EXPECT_EQ(counter_value("serve.requests"), 6u);
    EXPECT_EQ(counter_value("serve.success"), 6u);
    EXPECT_EQ(counter_value("serve.attempts"), 8u);
    EXPECT_EQ(counter_value("serve.retries"), 2u);
    EXPECT_EQ(counter_value("serve.attempt_fail.integrity"), 2u);
    EXPECT_EQ(counter_value("serve.backoff.sleeps"), 2u);
    EXPECT_EQ(counter_value("serve.witness.runs"), 6u);
    EXPECT_EQ(counter_value("serve.witness.mismatches"), 0u);
    EXPECT_EQ(counter_value("serve.degraded_success"), 0u);
  }
}

TEST(SupervisorTest, WitnessArbitratesDeterministicDatapathFault) {
  // Bit 12 of every keyed accumulator flips on replica 0: deterministic
  // corruption that an echo cannot see (both runs corrupt identically) but
  // a witness catches on the first differing bit. The ±2^12 perturbation
  // sits right at the scale of the logit gaps, so the attestation replay
  // scrambles enough probe classes to pin the fault on the primary (a
  // bit-30 flip would shift every logit yet preserve most argmaxes and
  // leave attestation inconclusive — see the echo test below).
  Harness h;
  SupervisorConfig config;
  config.replicas = 2;
  config.retry.jitter = 0.0;
  h.start(config);

  hw::FaultPlan corrupt;
  corrupt.accumulator_flip_rate = 1.0;
  corrupt.accumulator_bit = 12;
  corrupt.seed = 99;
  auto injector = std::make_unique<hw::FaultInjector>(corrupt);
  h.supervisor->pool().with_replica(0, [&](hw::TrustedDevice& device) {
    device.attach_fault_injector(injector.get());
  });

  const Tensor images = h.batch(7);
  const RequestResult result = h.supervisor->submit(images);
  EXPECT_EQ(result.attempts, 2);
  EXPECT_EQ(result.classes, h.reference->classify(images));

  const PoolStats stats = h.supervisor->pool().stats();
  EXPECT_EQ(stats.quarantines, 1u);   // the primary failed attestation
  EXPECT_EQ(stats.reprovisions, 1u);  // healed before the retry
  if (metrics::enabled()) {
    EXPECT_EQ(counter_value("serve.witness.mismatches"), 1u);
    EXPECT_EQ(counter_value("serve.attempt_fail.mismatch"), 1u);
  }
}

TEST(SupervisorTest, EchoCannotCatchDeterministicFaults) {
  // The documented limitation that makes kWitness the default: a
  // deterministic datapath fault reproduces exactly on an echo replay, so
  // echo verification serves corrupted logits without noticing. (A bit-30
  // flip shifts every logit by ±2^30 quanta yet tends to preserve the
  // argmax, so the damage here is to the logits, not the classes — which
  // is exactly why nothing class-based flags it either.)
  Harness h;
  SupervisorConfig config;
  config.replicas = 1;
  config.verify = VerifyMode::kEcho;
  h.start(config);

  hw::FaultPlan corrupt;
  corrupt.accumulator_flip_rate = 1.0;
  corrupt.seed = 99;
  auto injector = std::make_unique<hw::FaultInjector>(corrupt);
  h.supervisor->pool().with_replica(0, [&](hw::TrustedDevice& device) {
    device.attach_fault_injector(injector.get());
  });

  const Tensor images = h.batch(9);
  const RequestResult result = h.supervisor->submit(images);
  EXPECT_EQ(result.attempts, 1);
  EXPECT_FALSE(bitwise_equal(result.logits, h.reference->infer(images)));
  if (metrics::enabled()) {
    EXPECT_EQ(counter_value("serve.echo.mismatches"), 0u);
  }
}

TEST(SupervisorTest, DigestCatchesTheBit30FaultEchoMisses) {
  // Regression for the echo blind spot above: the *same* deterministic
  // bit-30 accumulator fault (flip_rate 1.0), but the bundle carries the
  // provision-time golden logit digest and verification runs kDigest. The
  // corrupted probe logits cannot reproduce the golden digest, so the
  // primary is quarantined and the retry serves bit-exact logits from
  // healed hardware — the fault class kEcho provably serves through.
  Harness h;
  h.bundle = make_chaos_model(/*seed=*/33, /*num_probes=*/16,
                              /*min_agreement=*/0.6,
                              /*with_logit_digest=*/true);
  SupervisorConfig config;
  config.replicas = 2;
  config.verify = VerifyMode::kDigest;
  config.retry.jitter = 0.0;
  h.start(config);

  hw::FaultPlan corrupt;
  corrupt.accumulator_flip_rate = 1.0;  // bit 30, the default
  corrupt.seed = 99;
  auto injector = std::make_unique<hw::FaultInjector>(corrupt);
  h.supervisor->pool().with_replica(0, [&](hw::TrustedDevice& device) {
    device.attach_fault_injector(injector.get());
  });

  const Tensor images = h.batch(9);
  const RequestResult result = h.supervisor->submit(images);
  EXPECT_EQ(result.attempts, 2);
  EXPECT_TRUE(bitwise_equal(result.logits, h.reference->infer(images)));
  EXPECT_EQ(result.classes, h.reference->classify(images));

  const PoolStats stats = h.supervisor->pool().stats();
  EXPECT_EQ(stats.quarantines, 1u);
  EXPECT_EQ(stats.reprovisions, 1u);
  if (metrics::enabled()) {
    EXPECT_EQ(counter_value("serve.digest.runs"), 2u);
    EXPECT_EQ(counter_value("serve.digest.mismatches"), 1u);
    EXPECT_EQ(counter_value("serve.attempt_fail.mismatch"), 1u);
  }
}

TEST(SupervisorTest, DigestWithoutGoldenFallsBackToEcho) {
  // kDigest on a bundle provisioned without a golden digest degrades to
  // echo verification — and inherits echo's documented blind spot.
  Harness h;  // default bundle: no logit digest recorded
  SupervisorConfig config;
  config.replicas = 1;
  config.verify = VerifyMode::kDigest;
  h.start(config);

  hw::FaultPlan corrupt;
  corrupt.accumulator_flip_rate = 1.0;
  corrupt.seed = 99;
  auto injector = std::make_unique<hw::FaultInjector>(corrupt);
  h.supervisor->pool().with_replica(0, [&](hw::TrustedDevice& device) {
    device.attach_fault_injector(injector.get());
  });

  const Tensor images = h.batch(9);
  const RequestResult result = h.supervisor->submit(images);
  EXPECT_EQ(result.attempts, 1);
  EXPECT_FALSE(bitwise_equal(result.logits, h.reference->infer(images)));
  if (metrics::enabled()) {
    EXPECT_EQ(counter_value("serve.digest.runs"), 0u);
    EXPECT_EQ(counter_value("serve.echo.mismatches"), 0u);
  }
}

TEST(SupervisorTest, RetryExhaustionCarriesTheCauseHistory) {
  // A single replica whose replacement hardware is just as corrupt: the
  // first attempt quarantines it, re-provisioning keeps failing, and the
  // remaining attempts drain against an empty pool.
  Harness h;
  SupervisorConfig config;
  config.replicas = 1;
  config.retry.max_attempts = 3;
  config.retry.jitter = 0.0;
  std::vector<ChaosReplicaPlan> plans(1);
  plans[0].initial = hw::FaultPlan{};
  plans[0].initial->key_bits = {42};
  plans[0].after_reprovision = plans[0].initial;
  h.start(config, plans);

  const Tensor images = h.batch(11);
  try {
    (void)h.supervisor->submit(images);
    FAIL() << "expected RetryExhaustedError";
  } catch (const RetryExhaustedError& e) {
    ASSERT_EQ(e.attempts(), 3);
    EXPECT_NE(e.history()[0].find("integrity"), std::string::npos);
    EXPECT_NE(e.history()[1].find("no healthy replica"), std::string::npos);
    EXPECT_NE(e.history()[2].find("no healthy replica"), std::string::npos);
  }
  const PoolStats stats = h.supervisor->pool().stats();
  EXPECT_EQ(stats.quarantines, 1u);
  EXPECT_EQ(stats.reprovisions, 0u);
  EXPECT_EQ(stats.reprovision_failures, 2u);  // attempts 2 and 3 both tried
}

TEST(SupervisorTest, DeadlineCutsOffBeforeBackoffWouldOverrun) {
  Harness h;
  SupervisorConfig config;
  config.replicas = 1;
  config.retry.jitter = 0.0;  // first backoff is exactly base_backoff_us
  std::vector<ChaosReplicaPlan> plans(1);
  plans[0].initial = hw::FaultPlan{};
  plans[0].initial->key_bits = {42};
  plans[0].after_reprovision = plans[0].initial;
  h.start(config, plans);

  RequestOptions options;
  options.deadline_us = 400;  // < base backoff of 500us
  try {
    (void)h.supervisor->submit(h.batch(13), options);
    FAIL() << "expected TimeoutError";
  } catch (const TimeoutError& e) {
    EXPECT_EQ(e.budget_us(), 400u);
    EXPECT_GE(e.elapsed_us(), 500u);  // elapsed-if-slept projection
  }
}

TEST(SupervisorTest, FailClosedRefusesDegradedPool) {
  Harness h;
  SupervisorConfig config;
  config.replicas = 2;
  config.degradation = DegradationPolicy::kFailClosed;
  config.retry.jitter = 0.0;
  std::vector<ChaosReplicaPlan> plans(1);
  plans[0].initial = hw::FaultPlan{};
  plans[0].initial->key_bits = {7};
  plans[0].after_reprovision = plans[0].initial;  // stays sick
  h.start(config, plans);

  // Attempt 1 quarantines replica 0; re-provisioning fails, so attempt 2
  // sees 1 of 2 replicas unhealthy and fail-closed refuses outright.
  EXPECT_THROW((void)h.supervisor->submit(h.batch(17)),
               DeviceUnavailableError);
  EXPECT_EQ(h.supervisor->pool().admitting_count(), 1u);
}

TEST(SupervisorTest, RejectWithRetryAfterGivesBackpressureHint) {
  Harness h;
  SupervisorConfig config;
  config.replicas = 1;
  config.degradation = DegradationPolicy::kRejectWithRetryAfter;
  h.start(config);

  // Trip the lone replica's breaker (3 consecutive reported failures); the
  // cooldown clock now dictates when maintenance can probe it again.
  for (int i = 0; i < 3; ++i) {
    h.supervisor->pool().report_failure(0);
  }
  ASSERT_EQ(h.supervisor->pool().state(0), BreakerState::kOpen);

  try {
    (void)h.supervisor->submit(h.batch(19));
    FAIL() << "expected DeviceUnavailableError";
  } catch (const DeviceUnavailableError& e) {
    EXPECT_EQ(e.retry_after_us(), config.breaker.open_cooldown_us);
  }
}

}  // namespace
}  // namespace hpnn::serve
