#include "serve/fleet.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/threadpool.hpp"
#include "hpnn/keychain.hpp"

namespace hpnn::serve {
namespace {

struct FleetSetup {
  obf::HpnnKey master;
  std::string model_id = "fleet-test-model";
  obf::PublishedModel artifact;
  obf::AttestationChallenge challenge;
};

FleetSetup make_setup(std::uint64_t master_seed = 21) {
  FleetSetup s;
  Rng rng(master_seed);
  s.master = obf::HpnnKey::random(rng);
  // The owner trains with the *derived* per-model secrets — the same ones
  // every provisioned device re-derives from (master, model_id).
  const obf::HpnnKey model_key = obf::derive_model_key(s.master, s.model_id);
  const std::uint64_t seed = obf::derive_schedule_seed(s.master, s.model_id);
  obf::Scheduler sched(seed);
  models::ModelConfig mc;
  mc.in_channels = 1;
  mc.image_size = 16;
  mc.init_seed = 3;
  obf::LockedModel model(models::Architecture::kCnn1, mc, model_key, sched);
  std::stringstream ss;
  obf::publish_model(ss, model);
  s.artifact = obf::read_published_model(ss);
  Rng probe_rng(97);
  s.challenge = obf::make_challenge(model, 16, probe_rng);
  return s;
}

TEST(FleetTest, WholeFleetProvisionsAndAttests) {
  const FleetSetup s = make_setup();
  FleetConfig config;
  config.devices = 4;
  const FleetReport report =
      provision_fleet(s.master, s.model_id, s.artifact, s.challenge, config);
  EXPECT_EQ(report.provisioned, 4u);
  EXPECT_EQ(report.attested, 4u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_TRUE(report.all_ok(/*attest_required=*/true));
  EXPECT_EQ(report.model_key_fingerprint,
            obf::key_fingerprint(obf::derive_model_key(s.master, s.model_id)));
  for (const auto& d : report.devices) {
    EXPECT_TRUE(d.provisioned);
    EXPECT_TRUE(d.attested);
    EXPECT_GT(d.agreement, 0.9);
    EXPECT_TRUE(d.error.empty()) << d.error;
  }
}

TEST(FleetTest, WrongMasterKeyFailsAttestationNotProvisioning) {
  const FleetSetup s = make_setup();
  Rng rng(99);
  const obf::HpnnKey wrong_master = obf::HpnnKey::random(rng);
  FleetConfig config;
  config.devices = 3;
  const FleetReport report = provision_fleet(wrong_master, s.model_id,
                                             s.artifact, s.challenge, config);
  // Devices still build and load the artifact; they just cannot decode it,
  // so every one records an attestation error.
  EXPECT_EQ(report.provisioned, 3u);
  EXPECT_EQ(report.attested, 0u);
  EXPECT_EQ(report.failed, 3u);
  EXPECT_FALSE(report.all_ok(/*attest_required=*/true));
  for (const auto& d : report.devices) {
    EXPECT_NE(d.error.find("attestation failed"), std::string::npos)
        << d.error;
  }
}

TEST(FleetTest, AttestationCanBeSkipped) {
  const FleetSetup s = make_setup();
  FleetConfig config;
  config.devices = 2;
  config.attest = false;
  const FleetReport report =
      provision_fleet(s.master, s.model_id, s.artifact, s.challenge, config);
  EXPECT_EQ(report.provisioned, 2u);
  EXPECT_EQ(report.attested, 0u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_TRUE(report.all_ok(/*attest_required=*/false));
}

TEST(FleetTest, ReportIsIdenticalAtAnyThreadCount) {
  const FleetSetup s = make_setup();
  FleetConfig config;
  config.devices = 5;
  const int saved = core::thread_count();
  core::set_thread_count(1);
  const FleetReport serial =
      provision_fleet(s.master, s.model_id, s.artifact, s.challenge, config);
  core::set_thread_count(4);
  const FleetReport parallel =
      provision_fleet(s.master, s.model_id, s.artifact, s.challenge, config);
  core::set_thread_count(saved);

  ASSERT_EQ(serial.devices.size(), parallel.devices.size());
  for (std::size_t i = 0; i < serial.devices.size(); ++i) {
    EXPECT_EQ(serial.devices[i].provisioned, parallel.devices[i].provisioned);
    EXPECT_EQ(serial.devices[i].attested, parallel.devices[i].attested);
    EXPECT_DOUBLE_EQ(serial.devices[i].agreement,
                     parallel.devices[i].agreement);
    EXPECT_EQ(serial.devices[i].error, parallel.devices[i].error);
  }
  EXPECT_EQ(serial.provisioned, parallel.provisioned);
  EXPECT_EQ(serial.attested, parallel.attested);
}

TEST(FleetTest, JsonReportCarriesCounters) {
  const FleetSetup s = make_setup();
  FleetConfig config;
  config.devices = 2;
  const FleetReport report =
      provision_fleet(s.master, s.model_id, s.artifact, s.challenge, config);
  std::stringstream ss;
  write_fleet_json(ss, report);
  const std::string json = ss.str();
  EXPECT_NE(json.find("\"fleet\":{"), std::string::npos);
  EXPECT_NE(json.find("\"devices\":2"), std::string::npos);
  EXPECT_NE(json.find("\"provisioned\":2"), std::string::npos);
  EXPECT_NE(json.find("\"attested\":2"), std::string::npos);
  EXPECT_NE(json.find(report.model_key_fingerprint), std::string::npos);
}

}  // namespace
}  // namespace hpnn::serve
