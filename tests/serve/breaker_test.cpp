// CircuitBreaker state machine: transitions, cooldown timing, and the
// quarantine escalation tier, exercised as pure bookkeeping (no devices).
#include "serve/breaker.hpp"

#include <gtest/gtest.h>

namespace hpnn::serve {
namespace {

BreakerPolicy test_policy() {
  BreakerPolicy policy;
  policy.failure_threshold = 3;
  policy.open_cooldown_us = 100;
  policy.half_open_successes = 2;
  policy.probe_failure_limit = 2;
  return policy;
}

TEST(BreakerTest, StartsClosedAndAdmitting) {
  CircuitBreaker breaker(test_policy());
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.admits());
  EXPECT_FALSE(breaker.maintenance_due(0));
}

TEST(BreakerTest, TripsAfterConsecutiveFailuresOnly) {
  CircuitBreaker breaker(test_policy());
  EXPECT_FALSE(breaker.record_failure(10));
  EXPECT_FALSE(breaker.record_failure(11));
  breaker.record_success();  // resets the consecutive-failure run
  EXPECT_FALSE(breaker.record_failure(12));
  EXPECT_FALSE(breaker.record_failure(13));
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.record_failure(14));
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_FALSE(breaker.admits());
}

TEST(BreakerTest, CooldownGatesProbeEligibility) {
  CircuitBreaker breaker(test_policy());
  breaker.record_failure(0);
  breaker.record_failure(0);
  ASSERT_TRUE(breaker.record_failure(50));
  EXPECT_FALSE(breaker.maintenance_due(149));
  EXPECT_EQ(breaker.maintenance_due_at(60), 150u);
  EXPECT_TRUE(breaker.maintenance_due(150));
  EXPECT_EQ(breaker.maintenance_due_at(200), 200u);  // already due
}

TEST(BreakerTest, ProbePassMovesToHalfOpenThenClosesOnSuccesses) {
  CircuitBreaker breaker(test_policy());
  for (int i = 0; i < 3; ++i) breaker.record_failure(0);
  breaker.record_probe(true, 200);
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_TRUE(breaker.admits());
  breaker.record_success();
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);  // needs 2
  breaker.record_success();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(BreakerTest, HalfOpenFailureReopensImmediately) {
  CircuitBreaker breaker(test_policy());
  for (int i = 0; i < 3; ++i) breaker.record_failure(0);
  breaker.record_probe(true, 200);
  ASSERT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_TRUE(breaker.record_failure(300));
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  // Cooldown restarts from the re-open time.
  EXPECT_FALSE(breaker.maintenance_due(399));
  EXPECT_TRUE(breaker.maintenance_due(400));
}

TEST(BreakerTest, RepeatedProbeFailuresEscalateToQuarantine) {
  CircuitBreaker breaker(test_policy());
  for (int i = 0; i < 3; ++i) breaker.record_failure(0);
  breaker.record_probe(false, 200);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  // A failed probe restarts the cooldown before the next one is due.
  EXPECT_FALSE(breaker.maintenance_due(250));
  breaker.record_probe(false, 300);
  EXPECT_EQ(breaker.state(), BreakerState::kQuarantined);
  EXPECT_FALSE(breaker.admits());
  // Quarantine is immediately due for re-provisioning, no cooldown.
  EXPECT_TRUE(breaker.maintenance_due(300));
}

TEST(BreakerTest, QuarantineIsStickyUntilReset) {
  CircuitBreaker breaker(test_policy());
  breaker.quarantine();
  EXPECT_EQ(breaker.state(), BreakerState::kQuarantined);
  breaker.record_probe(true, 500);  // probes do not heal quarantine
  EXPECT_EQ(breaker.state(), BreakerState::kQuarantined);
  breaker.record_success();
  EXPECT_EQ(breaker.state(), BreakerState::kQuarantined);
  breaker.reset();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.admits());
  // Counters are cleared: tripping again takes a full threshold run.
  breaker.record_failure(600);
  breaker.record_failure(601);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(BreakerTest, StateNamesAreStable) {
  EXPECT_STREQ(breaker_state_name(BreakerState::kClosed), "closed");
  EXPECT_STREQ(breaker_state_name(BreakerState::kHalfOpen), "half_open");
  EXPECT_STREQ(breaker_state_name(BreakerState::kOpen), "open");
  EXPECT_STREQ(breaker_state_name(BreakerState::kQuarantined), "quarantined");
}

}  // namespace
}  // namespace hpnn::serve
