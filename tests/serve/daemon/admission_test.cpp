// AdmissionController: watermark hysteresis, retry_after hint shape, and
// the per-tenant token bucket — all on virtual time.
#include "serve/daemon/admission.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/clock.hpp"
#include "core/error.hpp"

namespace hpnn::serve {
namespace {

AdmissionConfig watermark_config() {
  AdmissionConfig config;
  config.high_watermark = 8;
  config.low_watermark = 4;
  config.initial_drain_us_per_request = 1'000;
  return config;
}

TEST(AdmissionTest, WatermarkHysteresisLatchesAcrossTheBand) {
  core::SimulatedClock clock{0};
  AdmissionController admission(watermark_config(), clock);

  EXPECT_NO_THROW(admission.admit("a", 7));  // below high: admitted
  EXPECT_FALSE(admission.shedding());

  EXPECT_THROW(admission.admit("a", 8), AdmissionRejectedError);
  EXPECT_TRUE(admission.shedding());

  // Inside the band the latch holds: depth 6 is under the high watermark
  // but the controller keeps shedding until depth reaches the low one.
  EXPECT_THROW(admission.admit("a", 6), AdmissionRejectedError);
  EXPECT_TRUE(admission.shedding());

  EXPECT_NO_THROW(admission.admit("a", 4));  // at low: released
  EXPECT_FALSE(admission.shedding());

  const AdmissionController::Stats stats = admission.stats();
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.shed_watermark, 2u);
  EXPECT_EQ(stats.shed_rate, 0u);
}

TEST(AdmissionTest, RetryAfterHintIsMonotoneNonIncreasingAsQueueDrains) {
  // The contract clients rely on for backoff: as the queue drains through
  // a shedding episode, every successive hint is <= the previous one — a
  // client that honors the first hint never re-arrives to a *longer* wait.
  core::SimulatedClock clock{0};
  AdmissionController admission(watermark_config(), clock);
  admission.observe_drain(800);  // seed the drain EWMA

  std::vector<std::uint64_t> hints;
  for (std::size_t depth = 12; depth > 4; --depth) {
    try {
      admission.admit("a", depth);
      FAIL() << "expected shedding at depth " << depth;
    } catch (const AdmissionRejectedError& e) {
      hints.push_back(e.retry_after_us());
    }
  }
  ASSERT_EQ(hints.size(), 8u);
  for (std::size_t i = 1; i < hints.size(); ++i) {
    EXPECT_LE(hints[i], hints[i - 1]) << "hint " << i << " increased";
  }
  // Exact shape: drain_ewma * (depth - low_watermark + 1).
  EXPECT_EQ(hints.front(), 800u * 9u);
  EXPECT_EQ(hints.back(), 800u * 2u);
}

TEST(AdmissionTest, HintUsesInitialEstimateUntilDrainObserved) {
  core::SimulatedClock clock{0};
  AdmissionController admission(watermark_config(), clock);

  EXPECT_EQ(admission.watermark_retry_after_us(9), 1'000u * 6u);
  admission.observe_drain(500);
  EXPECT_EQ(admission.watermark_retry_after_us(9), 500u * 6u);
}

TEST(AdmissionTest, TokenBucketLimitsTenantRateIndependently) {
  core::SimulatedClock clock{0};
  AdmissionConfig config;
  config.per_tenant.tokens_per_sec = 1'000.0;  // one token per ms
  config.per_tenant.burst = 2.0;
  AdmissionController admission(config, clock);

  // Fresh bucket starts full: the burst is admitted, the next is not.
  EXPECT_NO_THROW(admission.admit("a", 0));
  EXPECT_NO_THROW(admission.admit("a", 0));
  try {
    admission.admit("a", 0);
    FAIL() << "expected rate rejection";
  } catch (const AdmissionRejectedError& e) {
    // Empty bucket at 1000 tokens/s: the next token is exactly 1ms out.
    EXPECT_EQ(e.retry_after_us(), 1'000u);
  }

  // Another tenant is unaffected by "a"'s exhaustion.
  EXPECT_NO_THROW(admission.admit("b", 0));

  // After the hinted wait, "a" has a token again.
  clock.advance(1'000);
  EXPECT_NO_THROW(admission.admit("a", 0));
  EXPECT_EQ(admission.stats().shed_rate, 1u);
}

TEST(AdmissionTest, ReloadSwapsPolicyAndClampsBucketLevels) {
  core::SimulatedClock clock{0};
  AdmissionConfig config;
  config.per_tenant.tokens_per_sec = 1'000.0;
  config.per_tenant.burst = 8.0;
  config.high_watermark = 100;
  config.low_watermark = 50;
  AdmissionController admission(config, clock);
  EXPECT_NO_THROW(admission.admit("a", 0));  // bucket now at 7 tokens

  AdmissionConfig tighter = config;
  tighter.per_tenant.burst = 1.0;
  tighter.high_watermark = 4;
  tighter.low_watermark = 2;
  admission.reload(tighter);

  // Burst clamped to 1: one more request drains the bucket.
  EXPECT_NO_THROW(admission.admit("a", 0));
  EXPECT_THROW(admission.admit("a", 0), AdmissionRejectedError);
  // New watermarks in force immediately.
  EXPECT_THROW(admission.admit("b", 4), AdmissionRejectedError);
  EXPECT_TRUE(admission.shedding());
}

TEST(AdmissionTest, InvalidConfigIsRejectedUpFront) {
  core::SimulatedClock clock{0};
  AdmissionConfig bad;
  bad.high_watermark = 2;
  bad.low_watermark = 8;
  EXPECT_THROW(AdmissionController(bad, clock), Error);

  AdmissionConfig ok;
  AdmissionController admission(ok, clock);
  AdmissionConfig bad_burst;
  bad_burst.per_tenant.burst = 0.5;
  EXPECT_THROW(admission.reload(bad_burst), Error);
}

}  // namespace
}  // namespace hpnn::serve
