// RequestQueue: bounded capacity, per-tenant fair rotation, queue-wait
// deadlines and the close/drain front-door semantics.
#include "serve/daemon/queue.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/clock.hpp"
#include "core/error.hpp"

namespace hpnn::serve {
namespace {

Tensor sample(std::int64_t rows = 1) {
  return Tensor(Shape{rows, 1, 2, 2});
}

std::shared_ptr<PendingRequest> request(const std::string& tenant,
                                        std::uint64_t id,
                                        std::uint64_t enqueued_at_us,
                                        std::int64_t rows = 1) {
  return std::make_shared<PendingRequest>(tenant, id, sample(rows),
                                          enqueued_at_us);
}

TEST(RequestQueueTest, PopRotatesFairlyAcrossTenantLanes) {
  core::SimulatedClock clock{0};
  RequestQueue queue(QueueConfig{}, clock);

  // Tenant "a" floods; "b" and "c" each queue one request. Fair rotation
  // must interleave the singletons instead of draining "a" first.
  queue.push(request("a", 1, 0));
  queue.push(request("a", 2, 0));
  queue.push(request("a", 3, 0));
  queue.push(request("b", 4, 0));
  queue.push(request("c", 5, 0));

  std::vector<std::uint64_t> order;
  while (auto r = queue.pop(0)) {
    order.push_back(r->id());
  }
  EXPECT_EQ(order, (std::vector<std::uint64_t>{1, 4, 5, 2, 3}));
  EXPECT_EQ(queue.depth(), 0u);
}

TEST(RequestQueueTest, CapacityBoundThrowsQueueFullWithObservedDepth) {
  core::SimulatedClock clock{0};
  QueueConfig config;
  config.capacity = 2;
  RequestQueue queue(config, clock);

  queue.push(request("a", 1, 0));
  queue.push(request("b", 2, 0));
  try {
    queue.push(request("c", 3, 0));
    FAIL() << "expected QueueFullError";
  } catch (const QueueFullError& e) {
    EXPECT_EQ(e.depth(), 2u);
    EXPECT_EQ(e.capacity(), 2u);
  }
  EXPECT_EQ(queue.depth(), 2u);
}

TEST(RequestQueueTest, MaxRowsSkipsLanesWhoseHeadDoesNotFit) {
  core::SimulatedClock clock{0};
  RequestQueue queue(QueueConfig{}, clock);

  queue.push(request("a", 1, 0, /*rows=*/6));
  queue.push(request("b", 2, 0, /*rows=*/2));

  // Only 4 rows of budget: the 6-row head of lane "a" is skipped (not
  // popped and pushed back), and lane "b"'s 2-row request ships.
  auto r = queue.pop(0, /*max_rows=*/4);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->id(), 2u);
  EXPECT_EQ(queue.rows(), 6);

  // Nothing fits in 4 rows now.
  EXPECT_EQ(queue.pop(0, 4), nullptr);
  EXPECT_EQ(queue.depth(), 1u);
}

TEST(RequestQueueTest, ExpireFailsRequestsPastTheQueueWaitBudget) {
  core::SimulatedClock clock{0};
  QueueConfig config;
  config.max_queue_wait_us = 1'000;
  RequestQueue queue(config, clock);

  auto stale = request("a", 1, /*enqueued_at_us=*/0);
  auto fresh = request("a", 2, /*enqueued_at_us=*/900);
  queue.push(stale);
  queue.push(fresh);

  EXPECT_EQ(queue.expire(/*now_us=*/1'500), 1u);
  EXPECT_EQ(queue.expired_total(), 1u);
  EXPECT_TRUE(stale->done());
  EXPECT_THROW((void)stale->take(), TimeoutError);
  EXPECT_FALSE(fresh->done());
  EXPECT_EQ(queue.depth(), 1u);
  EXPECT_EQ(queue.oldest_enqueued_at_us(), 900u);
}

TEST(RequestQueueTest, CloseRejectsPushesButKeepsDraining) {
  core::SimulatedClock clock{0};
  RequestQueue queue(QueueConfig{}, clock);

  queue.push(request("a", 1, 0));
  queue.close();
  EXPECT_TRUE(queue.closed());
  EXPECT_THROW(queue.push(request("a", 2, 0)), Error);

  auto r = queue.pop(0);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->id(), 1u);
  EXPECT_EQ(queue.depth(), 0u);
}

TEST(RequestQueueTest, FailAllResolvesEverythingQueued) {
  core::SimulatedClock clock{0};
  RequestQueue queue(QueueConfig{}, clock);

  auto one = request("a", 1, 0);
  auto two = request("b", 2, 0);
  queue.push(one);
  queue.push(two);

  EXPECT_EQ(queue.fail_all("daemon stopped"), 2u);
  EXPECT_EQ(queue.depth(), 0u);
  EXPECT_TRUE(one->done());
  EXPECT_TRUE(two->done());
  EXPECT_THROW((void)one->take(), Error);
}

TEST(RequestQueueTest, SetCapacityTakesEffectForSubsequentPushes) {
  core::SimulatedClock clock{0};
  QueueConfig config;
  config.capacity = 1;
  RequestQueue queue(config, clock);

  queue.push(request("a", 1, 0));
  EXPECT_THROW(queue.push(request("a", 2, 0)), QueueFullError);
  queue.set_capacity(2);
  EXPECT_EQ(queue.capacity(), 2u);
  queue.push(request("a", 2, 0));
  EXPECT_EQ(queue.depth(), 2u);
}

TEST(PendingRequestTest, CompleteThenTakeRoundTripsTheReply) {
  auto pending = request("a", 7, 100);
  pending->set_session_fingerprint("abc123");

  Reply reply;
  reply.classes = {3};
  reply.batch_id = 9;
  pending->complete(reply);

  EXPECT_TRUE(pending->done());
  const Reply out = pending->take();
  EXPECT_EQ(out.classes, (std::vector<std::int64_t>{3}));
  EXPECT_EQ(out.batch_id, 9u);
  EXPECT_EQ(pending->session_fingerprint(), "abc123");
}

}  // namespace
}  // namespace hpnn::serve
