// AdaptiveBatcher: the linger window's SLO feedback loop, batch-cut
// triggers, fair collection under the row budget, and reload semantics.
#include "serve/daemon/batcher.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <memory>

#include "core/clock.hpp"
#include "core/error.hpp"

namespace hpnn::serve {
namespace {

std::shared_ptr<PendingRequest> request(const std::string& tenant,
                                        std::uint64_t id,
                                        std::uint64_t enqueued_at_us,
                                        std::int64_t rows = 1) {
  return std::make_shared<PendingRequest>(tenant, id,
                                          Tensor(Shape{rows, 1, 2, 2}),
                                          enqueued_at_us);
}

BatcherConfig config_8x() {
  BatcherConfig config;
  config.max_batch_rows = 8;
  config.slo_p99_us = 10'000;
  config.min_linger_us = 500;
  config.max_linger_us = 4'000;
  return config;
}

TEST(BatcherTest, LingerAdaptsFromMaxTowardMinAsServiceTimeGrows) {
  AdaptiveBatcher batcher(config_8x());

  // Unseeded: be patient, wait the whole window for co-travellers.
  EXPECT_EQ(batcher.linger_us(), 4'000u);

  // Fast device (1ms batches): slo - ewma = 9ms, clamped to max_linger.
  batcher.observe_service(1'000);
  EXPECT_EQ(batcher.service_ewma_us(), 1'000u);
  EXPECT_EQ(batcher.linger_us(), 4'000u);

  // Service time eats the SLO budget: linger shrinks (slo - ewma), then
  // bottoms out at min_linger when the EWMA crosses the SLO.
  batcher.observe_service(9'000);  // ewma -> 1000 + 0.2*8000 = 2600
  EXPECT_EQ(batcher.service_ewma_us(), 2'600u);
  EXPECT_EQ(batcher.linger_us(), 4'000u);  // 10000-2600 still above the clamp
  for (int i = 0; i < 20; ++i) {
    batcher.observe_service(12'000);
  }
  EXPECT_EQ(batcher.linger_us(), 500u);
}

TEST(BatcherTest, BatchReadyOnFullRowsLingerExpiryOrClosedQueue) {
  core::SimulatedClock clock{0};
  RequestQueue queue(QueueConfig{}, clock);
  AdaptiveBatcher batcher(config_8x());

  EXPECT_FALSE(batcher.batch_ready(queue, 0));  // empty

  queue.push(request("a", 1, /*enqueued_at_us=*/0, /*rows=*/2));
  EXPECT_FALSE(batcher.batch_ready(queue, 100));  // lingering for more

  // Oldest request has waited out the (unseeded = max) linger window.
  EXPECT_EQ(batcher.next_due_us(queue, 100), 4'000u);
  EXPECT_TRUE(batcher.batch_ready(queue, 4'000));

  // A full batch of rows is cut immediately, no lingering.
  queue.push(request("b", 2, 100, /*rows=*/6));
  EXPECT_TRUE(batcher.batch_ready(queue, 200));

  // Drain: a closed queue ships partial batches at once.
  (void)batcher.collect(queue, 200);
  queue.push(request("c", 3, 300, /*rows=*/1));
  queue.close();
  EXPECT_TRUE(batcher.batch_ready(queue, 300));
}

TEST(BatcherTest, CollectFillsUpToMaxRowsInFairOrder) {
  core::SimulatedClock clock{0};
  RequestQueue queue(QueueConfig{}, clock);
  AdaptiveBatcher batcher(config_8x());

  queue.push(request("a", 1, 0, 3));
  queue.push(request("a", 2, 0, 3));
  queue.push(request("b", 3, 0, 3));
  queue.push(request("c", 4, 0, 2));

  // 8-row budget: a#1 (3), b#3 (3) by rotation, then only c#4 (2) still
  // fits — a#2 would overflow and its lane is skipped, not truncated.
  const auto batch = batcher.collect(queue, 5'000);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0]->id(), 1u);
  EXPECT_EQ(batch[1]->id(), 3u);
  EXPECT_EQ(batch[2]->id(), 4u);
  EXPECT_EQ(queue.depth(), 1u);
}

TEST(BatcherTest, OversizedRequestShipsAloneInsteadOfStarving) {
  core::SimulatedClock clock{0};
  RequestQueue queue(QueueConfig{}, clock);
  AdaptiveBatcher batcher(config_8x());

  queue.push(request("a", 1, 0, /*rows=*/12));  // > max_batch_rows
  queue.push(request("b", 2, 0, 1));

  const auto batch = batcher.collect(queue, 5'000);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0]->id(), 1u);
  EXPECT_EQ(batch[0]->rows(), 12);
  EXPECT_EQ(queue.depth(), 1u);
}

TEST(BatcherTest, NextDueNeverReturnsThePast) {
  core::SimulatedClock clock{0};
  RequestQueue queue(QueueConfig{}, clock);
  AdaptiveBatcher batcher(config_8x());

  EXPECT_EQ(batcher.next_due_us(queue, 0),
            std::numeric_limits<std::uint64_t>::max());

  queue.push(request("a", 1, 0));
  // Window long expired: due clamps to "now", not a time in the past.
  EXPECT_EQ(batcher.next_due_us(queue, 50'000), 50'000u);
}

TEST(BatcherTest, ReloadValidatesAndKeepsTheLearnedEwma) {
  AdaptiveBatcher batcher(config_8x());
  batcher.observe_service(2'000);

  BatcherConfig bad = config_8x();
  bad.min_linger_us = 5'000;
  bad.max_linger_us = 1'000;
  EXPECT_THROW(batcher.reload(bad), Error);

  BatcherConfig tighter = config_8x();
  tighter.slo_p99_us = 3'000;
  batcher.reload(tighter);
  // EWMA survived the reload: linger = slo - ewma = 1000us.
  EXPECT_EQ(batcher.service_ewma_us(), 2'000u);
  EXPECT_EQ(batcher.linger_us(), 1'000u);
}

}  // namespace
}  // namespace hpnn::serve
