// Line-protocol codec: parse/format round trips and the error taxonomy
// mapping clients key their retry logic on.
#include "serve/daemon/protocol.hpp"

#include <gtest/gtest.h>

#include <exception>
#include <string>

#include "core/error.hpp"

namespace hpnn::serve {
namespace {

TEST(ProtocolTest, ParsesInferWithAllFields) {
  const ProtoRequest r = parse_request("INFER alice 7 99 3");
  EXPECT_EQ(r.kind, ProtoRequest::Kind::kInfer);
  EXPECT_EQ(r.tenant, "alice");
  EXPECT_EQ(r.id, 7u);
  EXPECT_EQ(r.seed, 99u);
  EXPECT_EQ(r.n, 3);
}

TEST(ProtocolTest, ParsesControlVerbs) {
  EXPECT_EQ(parse_request("STATS").kind, ProtoRequest::Kind::kStats);
  EXPECT_EQ(parse_request("DRAIN").kind, ProtoRequest::Kind::kDrain);
  EXPECT_EQ(parse_request("QUIT").kind, ProtoRequest::Kind::kQuit);

  const ProtoRequest reload = parse_request("RELOAD slo-us=9000 max-batch=4");
  EXPECT_EQ(reload.kind, ProtoRequest::Kind::kReload);
  ASSERT_EQ(reload.options.size(), 2u);
  EXPECT_EQ(reload.options[0].first, "slo-us");
  EXPECT_EQ(reload.options[0].second, "9000");
  EXPECT_EQ(reload.options[1].first, "max-batch");
  EXPECT_EQ(reload.options[1].second, "4");
}

TEST(ProtocolTest, RejectsMalformedLines) {
  EXPECT_THROW((void)parse_request(""), Error);
  EXPECT_THROW((void)parse_request("NOPE"), Error);
  EXPECT_THROW((void)parse_request("INFER alice 7 99"), Error);      // short
  EXPECT_THROW((void)parse_request("INFER alice 7 99 0"), Error);    // n < 1
  EXPECT_THROW((void)parse_request("INFER alice x 99 1"), Error);    // id NaN
  EXPECT_THROW((void)parse_request("INFER alice 7 99 2x"), Error);   // junk
  EXPECT_THROW((void)parse_request("RELOAD slo-us"), Error);         // no '='
  EXPECT_THROW((void)parse_request("RELOAD =9000"), Error);          // no key
}

TEST(ProtocolTest, FormatsReplyWithAccounting) {
  Reply reply;
  reply.classes = {3, 1};
  reply.replica = 2;
  reply.attempts = 1;
  reply.queue_wait_us = 400;
  reply.latency_us = 1'600;
  reply.batch_id = 5;
  reply.batch_rows = 8;
  reply.degraded = false;
  reply.session_fingerprint = "abcdef0123456789deadbeef";

  EXPECT_EQ(format_reply(7, reply),
            "OK 7 classes=3,1 replica=2 attempts=1 queue_wait_us=400 "
            "latency_us=1600 batch=5/8 degraded=0 session=abcdef012345");
}

TEST(ProtocolTest, MapsTheServingErrorTaxonomyToStableKinds) {
  const auto line = [](std::exception_ptr e) {
    return format_exception(9, std::move(e));
  };
  EXPECT_EQ(line(std::make_exception_ptr(
                AdmissionRejectedError("shedding", 2'500))),
            "ERR 9 admission_rejected retry_after_us=2500 shedding");
  EXPECT_EQ(line(std::make_exception_ptr(QueueFullError("full", 64, 64))),
            "ERR 9 queue_full retry_after_us=0 full");
  EXPECT_EQ(line(std::make_exception_ptr(
                DeviceUnavailableError("no replica", 800))),
            "ERR 9 unavailable retry_after_us=800 no replica");
  EXPECT_EQ(line(std::make_exception_ptr(Error("boom"))),
            "ERR 9 error retry_after_us=0 boom");
}

TEST(ProtocolTest, FormatsStatsSnapshot) {
  DaemonStats stats;
  stats.queue_depth = 3;
  stats.submitted = 10;
  stats.completed = 6;
  stats.failed = 1;
  stats.expired = 0;
  stats.batches = 2;
  stats.admission.admitted = 10;
  stats.admission.shed_watermark = 4;
  stats.admission.shed_rate = 1;
  stats.sessions.hits = 8;
  stats.sessions.misses = 2;
  stats.sessions.revocations = 1;

  EXPECT_EQ(format_stats(stats),
            "STATS depth=3 submitted=10 completed=6 failed=1 expired=0 "
            "batches=2 admitted=10 shed_watermark=4 shed_rate=1 "
            "session_hits=8 session_misses=2 session_revocations=1");
}

}  // namespace
}  // namespace hpnn::serve
