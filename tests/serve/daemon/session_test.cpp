// SessionCache: keychain-derived per-tenant session keys, LRU eviction,
// and epoch-bumping revocation (the old key can never be re-derived).
#include "serve/daemon/session.hpp"

#include <gtest/gtest.h>

#include <string>

#include "core/clock.hpp"
#include "core/error.hpp"
#include "hpnn/keychain.hpp"

namespace hpnn::serve {
namespace {

obf::HpnnKey master() {
  Rng rng(2020);
  return obf::HpnnKey::random(rng);
}

TEST(SessionCacheTest, TicketsAreDeterministicPerTenantAndModel) {
  core::SimulatedClock clock{0};
  SessionCache cache(master(), "model-a", SessionCacheConfig{}, clock);
  SessionCache twin(master(), "model-a", SessionCacheConfig{}, clock);

  const SessionTicket t1 = cache.ticket("alice");
  EXPECT_EQ(t1.tenant, "alice");
  EXPECT_EQ(t1.epoch, 0u);
  EXPECT_FALSE(t1.fingerprint.empty());

  // Same keychain, same derivation string => same session fingerprint.
  EXPECT_EQ(twin.ticket("alice").fingerprint, t1.fingerprint);
  // Different tenant or model diversifies the key.
  EXPECT_NE(cache.ticket("bob").fingerprint, t1.fingerprint);
  SessionCache other(master(), "model-b", SessionCacheConfig{}, clock);
  EXPECT_NE(other.ticket("alice").fingerprint, t1.fingerprint);
}

TEST(SessionCacheTest, HitsServeFromCacheAndRefreshLru) {
  core::SimulatedClock clock{0};
  SessionCacheConfig config;
  config.capacity = 2;
  SessionCache cache(master(), "m", config, clock);

  const std::string a = cache.ticket("a").fingerprint;
  (void)cache.ticket("b");
  (void)cache.ticket("a");  // hit: "a" becomes most-recently-used
  (void)cache.ticket("c");  // evicts "b", not "a"

  const SessionCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(cache.size(), 2u);

  // "a" survived eviction with the same fingerprint (hit, not re-derive).
  EXPECT_EQ(cache.ticket("a").fingerprint, a);
  // "b" was evicted but NOT revoked: the re-derived key is the same epoch.
  const SessionTicket b = cache.ticket("b");
  EXPECT_EQ(b.epoch, 0u);
}

TEST(SessionCacheTest, RevocationBumpsEpochAndRotatesTheKey) {
  core::SimulatedClock clock{0};
  SessionCache cache(master(), "m", SessionCacheConfig{}, clock);

  const SessionTicket before = cache.ticket("alice");
  cache.revoke("alice");

  const SessionTicket after = cache.ticket("alice");
  EXPECT_EQ(after.epoch, before.epoch + 1);
  EXPECT_NE(after.fingerprint, before.fingerprint);
  EXPECT_EQ(cache.stats().revocations, 1u);

  // Epochs only move forward; a second revocation rotates again.
  cache.revoke("alice");
  const SessionTicket third = cache.ticket("alice");
  EXPECT_EQ(third.epoch, 2u);
  EXPECT_NE(third.fingerprint, after.fingerprint);
}

TEST(SessionCacheTest, RevokeAllRotatesEveryCachedSession) {
  core::SimulatedClock clock{0};
  SessionCache cache(master(), "m", SessionCacheConfig{}, clock);

  const std::string a = cache.ticket("a").fingerprint;
  const std::string b = cache.ticket("b").fingerprint;
  cache.revoke_all();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_NE(cache.ticket("a").fingerprint, a);
  EXPECT_NE(cache.ticket("b").fingerprint, b);
  EXPECT_EQ(cache.stats().revocations, 2u);
}

TEST(SessionCacheTest, ResizeEvictsDownAndValidates) {
  core::SimulatedClock clock{0};
  SessionCacheConfig config;
  config.capacity = 4;
  SessionCache cache(master(), "m", config, clock);
  (void)cache.ticket("a");
  (void)cache.ticket("b");
  (void)cache.ticket("c");

  cache.resize(1);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.capacity(), 1u);
  // Most recently used tenant ("c") is the one kept.
  EXPECT_EQ(cache.ticket("c").epoch, 0u);
  EXPECT_EQ(cache.stats().hits, 1u);

  EXPECT_THROW(cache.resize(0), Error);
  EXPECT_THROW(SessionCache(master(), "m", SessionCacheConfig{0}, clock),
               Error);
}

}  // namespace
}  // namespace hpnn::serve
