// ServeDaemon end-to-end in pump mode on a SimulatedClock: correct answers
// through coalesced batches, overload shedding with honored retry_after
// hints, graceful drain, config reload, and session revocation when the
// hardware under a batch trips an integrity quarantine. The deterministic
// 2x-overload acceptance scenario (byte-identical reruns) rides the load
// generator at the bottom.
#include "serve/daemon/daemon.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "core/metrics.hpp"
#include "hw/fault.hpp"
#include "hpnn/keychain.hpp"
#include "serve/chaos.hpp"
#include "serve/daemon/load_gen.hpp"

namespace hpnn::serve {
namespace {

/// Chaos-bundle harness with a daemon in pump mode over the supervisor.
struct Harness {
  ChaosModelBundle bundle = make_chaos_model(/*seed=*/33);
  SimulatedClock clock{0};
  std::vector<std::unique_ptr<hw::FaultInjector>> injectors;
  std::mutex injectors_mutex;
  std::unique_ptr<ServingSupervisor> supervisor;
  std::unique_ptr<ServeDaemon> daemon;
  std::unique_ptr<hw::TrustedDevice> reference;

  void start(DaemonConfig daemon_config, SupervisorConfig config = {},
             std::vector<ChaosReplicaPlan> plans = {}) {
    config.clock = &clock;
    config.provision = [this, plans](hw::TrustedDevice& device,
                                     std::size_t replica, bool reprovision) {
      if (replica >= plans.size()) {
        return;
      }
      const auto& slot = reprovision ? plans[replica].after_reprovision
                                     : plans[replica].initial;
      if (!slot.has_value()) {
        return;
      }
      std::lock_guard<std::mutex> lock(injectors_mutex);
      injectors.push_back(std::make_unique<hw::FaultInjector>(*slot));
      device.attach_fault_injector(injectors.back().get());
    };
    supervisor = std::make_unique<ServingSupervisor>(
        bundle.master, bundle.model_id, bundle.artifact, bundle.challenge,
        config);
    daemon_config.workers = 0;  // pump mode
    daemon = std::make_unique<ServeDaemon>(*supervisor, bundle.master,
                                           bundle.model_id, daemon_config);
    reference = std::make_unique<hw::TrustedDevice>(
        obf::derive_model_key(bundle.master, bundle.model_id),
        obf::derive_schedule_seed(bundle.master, bundle.model_id),
        config.device);
    reference->load_model(bundle.artifact);
  }

  Tensor batch(std::uint64_t seed, std::int64_t n = 1) const {
    Rng rng(seed);
    return Tensor::normal(Shape{n, bundle.artifact.in_channels,
                                bundle.artifact.image_size,
                                bundle.artifact.image_size},
                          rng, 0.0f, 0.25f);
  }
};

DaemonConfig pump_config() {
  DaemonConfig config;
  config.batcher.max_batch_rows = 8;
  config.batcher.slo_p99_us = 20'000;
  config.batcher.max_linger_us = 2'000;
  config.queue.capacity = 64;
  config.sim_service_base_us = 400;
  config.sim_service_per_row_us = 100;
  return config;
}

TEST(ServeDaemonTest, BlockingSubmitServesWithExactVirtualTimeAccounting) {
  Harness h;
  h.start(pump_config());

  const Tensor images = h.batch(1);
  const Reply reply = h.daemon->submit("alice", images);

  // Alone in the queue: lingers the full (unseeded) 2ms window, then pays
  // the simulated 400 + 100 * 1 service time.
  EXPECT_EQ(reply.classes, h.reference->classify(images));
  EXPECT_EQ(reply.queue_wait_us, 2'000u);
  EXPECT_EQ(reply.latency_us, 2'500u);
  EXPECT_EQ(reply.batch_rows, 1);
  EXPECT_EQ(reply.attempts, 1);
  EXPECT_FALSE(reply.degraded);
  EXPECT_FALSE(reply.session_fingerprint.empty());

  const DaemonStats stats = h.daemon->stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.queue_depth, 0u);
}

TEST(ServeDaemonTest, CoalescedBatchSlicesRepliesInRowOrder) {
  Harness h;
  h.start(pump_config());

  // The oracle runs at coalesced-batch granularity (dynamic int8 scales
  // depend on batch content), hung on the daemon's batch observer.
  int batches_seen = 0;
  h.daemon->set_batch_observer([&](const Tensor& images,
                                   const RequestResult& result,
                                   const auto& requests) {
    ++batches_seen;
    EXPECT_EQ(result.classes, h.reference->classify(images));
    std::int64_t rows = 0;
    for (const auto& request : requests) {
      rows += request->rows();
    }
    EXPECT_EQ(images.dim(0), rows);
  });

  auto a = h.daemon->submit_async("alice", h.batch(1, 2));
  auto b = h.daemon->submit_async("bob", h.batch(2, 3));
  auto c = h.daemon->submit_async("alice", h.batch(3, 3));
  h.daemon->pump_until_idle();
  ASSERT_TRUE(a->done() && b->done() && c->done());

  // 2 + 3 + 3 rows fill one 8-row batch; each reply gets its row slice of
  // the batch result, in fair-rotation order (alice#1, bob, alice#2).
  const Reply ra = a->take();
  const Reply rb = b->take();
  const Reply rc = c->take();
  EXPECT_EQ(batches_seen, 1);
  EXPECT_EQ(ra.batch_id, rb.batch_id);
  EXPECT_EQ(rb.batch_id, rc.batch_id);
  EXPECT_EQ(ra.batch_rows, 8);
  EXPECT_EQ(ra.classes.size(), 2u);
  EXPECT_EQ(rb.classes.size(), 3u);
  EXPECT_EQ(rc.classes.size(), 3u);

  // The slices partition the batch result exactly.
  std::vector<std::int64_t> joined;
  joined.insert(joined.end(), ra.classes.begin(), ra.classes.end());
  joined.insert(joined.end(), rb.classes.begin(), rb.classes.end());
  joined.insert(joined.end(), rc.classes.begin(), rc.classes.end());
  EXPECT_EQ(joined.size(), 8u);
}

TEST(ServeDaemonTest, MismatchedSampleShapeIsRejectedSynchronously) {
  Harness h;
  h.start(pump_config());
  (void)h.daemon->submit("alice", h.batch(1));

  // Wrong rank and wrong sample shape both fail at submit time — they must
  // never ride into (and poison) a coalesced batch.
  EXPECT_THROW((void)h.daemon->submit_async("bob", Tensor(Shape{2, 2})),
               ShapeError);
  const auto& art = h.bundle.artifact;
  EXPECT_THROW(
      (void)h.daemon->submit_async(
          "bob", Tensor(Shape{1, art.in_channels, art.image_size + 1,
                              art.image_size})),
      ShapeError);
  EXPECT_EQ(h.daemon->stats().submitted, 1u);
}

TEST(ServeDaemonTest, ShedsAtHighWatermarkWithHonoredRetryAfterHints) {
  Harness h;
  DaemonConfig config = pump_config();
  config.queue.capacity = 32;
  config.admission.high_watermark = 8;
  config.admission.low_watermark = 2;
  config.admission.initial_drain_us_per_request = 700;
  h.start(config);

  // Flood one burst of 2-row requests past the high watermark, no pumping:
  // 8 are admitted (depth reaches the watermark), the rest shed.
  int admitted = 0;
  std::uint64_t first_hint = 0;
  std::vector<std::shared_ptr<PendingRequest>> accepted;
  for (int i = 0; i < 10; ++i) {
    try {
      accepted.push_back(h.daemon->submit_async(
          "t" + std::to_string(i % 3), h.batch(i, /*n=*/2)));
      ++admitted;
    } catch (const AdmissionRejectedError& e) {
      first_hint = e.retry_after_us();
    }
  }
  EXPECT_EQ(admitted, 8);
  ASSERT_GT(first_hint, 0u);
  EXPECT_TRUE(h.daemon->admission().shedding());

  // A client that honors the hint: sleep retry_after, let one batch pump,
  // retry. Hints must never grow while the queue drains (monotone
  // non-increasing), and the client must eventually be admitted.
  std::vector<std::uint64_t> hints{first_hint};
  std::shared_ptr<PendingRequest> retried;
  for (int attempt = 0; attempt < 32 && retried == nullptr; ++attempt) {
    h.clock.advance(hints.back());
    (void)h.daemon->pump();  // one scheduler step: at most one batch
    try {
      retried = h.daemon->submit_async("late", h.batch(99, /*n=*/2));
    } catch (const AdmissionRejectedError& e) {
      EXPECT_LE(e.retry_after_us(), hints.back())
          << "retry_after grew while draining";
      hints.push_back(e.retry_after_us());
    }
  }
  ASSERT_NE(retried, nullptr) << "honored hints never got the client in";
  // The queue drained partially per step, so at least one retry saw a
  // smaller (not equal) hint before admission reopened.
  EXPECT_GE(hints.size(), 2u);
  h.daemon->pump_until_idle();
  EXPECT_EQ(retried->take().classes.size(), 2u);
  for (const auto& request : accepted) {
    EXPECT_TRUE(request->done());
  }
  EXPECT_FALSE(h.daemon->admission().shedding());
  EXPECT_GE(h.daemon->stats().admission.shed_watermark, 2u);
}

TEST(ServeDaemonTest, QueueBoundBacksUpAdmissionAsTheHardStop) {
  Harness h;
  DaemonConfig config = pump_config();
  config.queue.capacity = 4;
  config.admission.high_watermark = 100;  // admission asleep at the switch
  config.admission.low_watermark = 50;
  h.start(config);

  for (int i = 0; i < 4; ++i) {
    (void)h.daemon->submit_async("a", h.batch(i));
  }
  EXPECT_THROW((void)h.daemon->submit_async("a", h.batch(9)),
               QueueFullError);
  h.daemon->pump_until_idle();
}

TEST(ServeDaemonTest, GracefulDrainCompletesInFlightAndClosesTheDoor) {
  Harness h;
  h.start(pump_config());

  auto a = h.daemon->submit_async("alice", h.batch(1, 2));
  auto b = h.daemon->submit_async("bob", h.batch(2));
  h.daemon->drain();

  // Everything in flight completed (not failed), and the front door is
  // closed: new submits throw instead of queueing forever.
  ASSERT_TRUE(a->done() && b->done());
  EXPECT_EQ(a->take().classes, h.reference->classify(h.batch(1, 2)));
  EXPECT_EQ(b->take().classes.size(), 1u);
  EXPECT_TRUE(h.daemon->queue().closed());
  EXPECT_THROW((void)h.daemon->submit_async("late", h.batch(3)), Error);
  const DaemonStats stats = h.daemon->stats();
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.queue_depth, 0u);
}

TEST(ServeDaemonTest, ReloadSwapsPolicyKeepingSessionsAndQueue) {
  Harness h;
  h.start(pump_config());

  const std::string fingerprint =
      h.daemon->submit("alice", h.batch(1)).session_fingerprint;

  DaemonConfig tighter = pump_config();
  tighter.queue.capacity = 2;
  tighter.batcher.max_linger_us = 0;  // cut batches immediately
  tighter.admission.high_watermark = 2;
  tighter.admission.low_watermark = 1;
  h.daemon->reload(tighter);

  EXPECT_EQ(h.daemon->queue().capacity(), 2u);
  // Cached session keys survive the reload: same fingerprint, a cache hit.
  const Reply after = h.daemon->submit("alice", h.batch(2));
  EXPECT_EQ(after.session_fingerprint, fingerprint);
  EXPECT_GE(h.daemon->stats().sessions.hits, 1u);
  // New batcher policy in force: no linger window left.
  EXPECT_EQ(after.queue_wait_us, 0u);
}

TEST(ServeDaemonTest, IntegrityQuarantineRevokesTheBatchTenantsSessions) {
  // Replica 0 boots with a flipped sealed-key bit: the first batch trips
  // an integrity quarantine, the supervisor retries onto healthy hardware
  // (the answer stays correct), and the daemon revokes the session of
  // every tenant whose traffic rode the compromised batch.
  Harness h;
  SupervisorConfig config;
  config.replicas = 2;
  config.retry.jitter = 0.0;
  std::vector<ChaosReplicaPlan> plans(1);
  plans[0].initial = hw::FaultPlan{};
  plans[0].initial->key_bits = {17};
  h.start(pump_config(), config, plans);

  const Tensor images = h.batch(1);
  const SessionTicket before = h.daemon->sessions().ticket("alice");
  const Reply reply = h.daemon->submit("alice", images);

  EXPECT_EQ(reply.classes, h.reference->classify(images));
  EXPECT_EQ(reply.attempts, 2);
  // The reply carries the fingerprint issued at admission time...
  EXPECT_EQ(reply.session_fingerprint, before.fingerprint);
  // ...but the tenant's next session rides a rotated key.
  const SessionTicket after = h.daemon->sessions().ticket("alice");
  EXPECT_EQ(after.epoch, before.epoch + 1);
  EXPECT_NE(after.fingerprint, before.fingerprint);
  EXPECT_EQ(h.daemon->stats().sessions.revocations, 1u);
  EXPECT_EQ(h.supervisor->pool().stats().quarantines, 1u);
}

TEST(ServeDaemonTest, OverloadAcceptanceSheddingKeepsSloAndDeterminism) {
  // The issue's acceptance scenario: 2x sustainable offered load, bursty
  // arrivals, a mid-storm replica quarantine. The daemon must shed (with
  // positive retry_after hints), keep admitted p99 under the SLO, serve
  // zero wrong answers, and produce byte-identical reports when rerun.
  const ChaosModelBundle bundle =
      make_chaos_model(33, 16, 0.6, /*with_logit_digest=*/true);

  LoadScenario scenario;
  scenario.requests = 240;
  scenario.batch = 1;
  scenario.tenants = 4;
  scenario.seed = 1;
  scenario.burst = 8;
  scenario.config.replicas = 4;
  scenario.config.verify = VerifyMode::kDigest;
  scenario.daemon.batcher.max_batch_rows = 8;
  scenario.daemon.batcher.slo_p99_us = 20'000;
  scenario.daemon.batcher.max_linger_us = 2'000;
  scenario.daemon.queue.capacity = 64;
  scenario.daemon.queue.max_queue_wait_us = 20'000;
  scenario.daemon.admission.high_watermark = 48;
  scenario.daemon.admission.low_watermark = 24;
  scenario.daemon.sim_service_base_us = 400;
  scenario.daemon.sim_service_per_row_us = 100;
  scenario.offered_qps = 2.0 * sustainable_qps(scenario);
  scenario.quarantine_at_request = scenario.requests / 2;

  const LoadReport report = run_load_scenario(bundle, scenario);

  // Graceful degradation: shedding, not corruption or collapse.
  EXPECT_EQ(report.offered, 240);
  EXPECT_GT(report.shed, 0);
  EXPECT_GT(report.min_retry_after_us, 0u);
  EXPECT_LE(report.min_retry_after_us, report.max_retry_after_us);
  EXPECT_EQ(report.wrong, 0);
  EXPECT_EQ(report.failed, 0);
  EXPECT_LE(report.p99_latency_us, scenario.daemon.batcher.slo_p99_us);
  EXPECT_EQ(report.accepted + report.shed + report.queue_full,
            report.offered);
  EXPECT_EQ(report.completed + report.expired, report.accepted);
  // The mid-storm capacity loss registered and healed.
  EXPECT_GE(report.pool.quarantines, 1u);
  // Graceful drain: nothing left queued, the queue ended closed.
  EXPECT_EQ(report.daemon.queue_depth, 0u);

  // Determinism: the scenario is a pure function of its parameters — the
  // rerun matches field-for-field and byte-for-byte in metrics.
  const LoadReport rerun = run_load_scenario(bundle, scenario);
  EXPECT_EQ(rerun.accepted, report.accepted);
  EXPECT_EQ(rerun.shed, report.shed);
  EXPECT_EQ(rerun.p50_latency_us, report.p50_latency_us);
  EXPECT_EQ(rerun.p99_latency_us, report.p99_latency_us);
  EXPECT_EQ(rerun.min_retry_after_us, report.min_retry_after_us);
  EXPECT_EQ(rerun.max_retry_after_us, report.max_retry_after_us);
  EXPECT_EQ(rerun.virtual_elapsed_us, report.virtual_elapsed_us);
  EXPECT_EQ(rerun.metrics_json, report.metrics_json);
}

}  // namespace
}  // namespace hpnn::serve
