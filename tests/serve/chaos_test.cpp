// Chaos-harness acceptance: a seeded fault campaign against a replicated
// pool serves zero wrong answers, heals every quarantine through
// re-provisioning, matches the analytic counter trace exactly, and is
// byte-identically reproducible from its seed.
#include "serve/chaos.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/metrics.hpp"
#include "core/threadpool.hpp"

namespace hpnn::serve {
namespace {

/// Single-threaded fixture: the chaos *counters* are exact at any thread
/// count, but byte-identical metrics snapshots additionally require a
/// serial schedule (histogram bucket fills are order-dependent only in the
/// deterministic-snapshot view's sample lists).
class ChaosDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    previous_threads_ = core::thread_count();
    core::set_thread_count(1);
  }
  void TearDown() override { core::set_thread_count(previous_threads_); }
  int previous_threads_ = 1;
};

TEST(ChaosTest, AnalyticKeySeuScenarioMatchesExactCounters) {
  // Two of four replicas start with flipped sealed-key bits; the SEU
  // weather stays off so every number below is a closed-form consequence
  // of the routing and maintenance rules (see supervisor_test's trace).
  const ChaosModelBundle bundle = make_chaos_model(33);
  ChaosScenario scenario;
  scenario.requests = 8;
  scenario.batch = 2;
  scenario.seed = 1;
  scenario.key_seu_rate = 0.0;
  scenario.config.replicas = 4;
  scenario.config.retry.jitter = 0.0;
  scenario.plans.resize(2);
  scenario.plans[0].initial = hw::FaultPlan{};
  scenario.plans[0].initial->key_bits = {17};
  scenario.plans[1].initial = hw::FaultPlan{};
  scenario.plans[1].initial->key_bits = {203};

  const ChaosReport report = run_chaos_scenario(bundle, scenario);
  EXPECT_EQ(report.requests, 8);
  EXPECT_EQ(report.succeeded, 8);
  EXPECT_EQ(report.wrong, 0);
  EXPECT_EQ(report.timeouts, 0);
  EXPECT_EQ(report.unavailable, 0);
  EXPECT_EQ(report.retry_exhausted, 0);
  EXPECT_EQ(report.degraded, 0);
  EXPECT_EQ(report.attempts, 10);  // request 1 takes 3 attempts, rest 1
  EXPECT_EQ(report.retries, 2);
  EXPECT_EQ(report.seus_injected, 0);
  EXPECT_EQ(report.pool.quarantines, 2u);
  EXPECT_EQ(report.pool.reprovisions, 2u);
  EXPECT_EQ(report.pool.reprovision_failures, 0u);
  EXPECT_EQ(report.pool.probes, 0u);
  EXPECT_EQ(report.pool.breaker_trips, 0u);
}

TEST(ChaosTest, RateDrivenSeuWeatherNeverServesWrongAnswers) {
  // The acceptance scenario from the serving story: random persistent key
  // SEUs land on healthy replicas mid-campaign; every one must end as a
  // detected quarantine + clean re-provision, never a wrong answer.
  const ChaosModelBundle bundle = make_chaos_model(33);
  ChaosScenario scenario;
  scenario.requests = 40;
  scenario.batch = 2;
  scenario.seed = 5;
  scenario.key_seu_rate = 0.15;
  scenario.config.replicas = 4;

  const ChaosReport report = run_chaos_scenario(bundle, scenario);
  EXPECT_EQ(report.wrong, 0);
  EXPECT_EQ(report.succeeded, report.requests);
  EXPECT_GT(report.seus_injected, 0);
  // Every SEU is eventually caught (integrity pre-check or witness), and
  // replacement hardware is clean, so after the final maintenance pump the
  // books balance: one successful re-provision per quarantine.
  EXPECT_LE(report.pool.quarantines,
            static_cast<std::uint64_t>(report.seus_injected));
  EXPECT_EQ(report.pool.reprovisions, report.pool.quarantines);
  EXPECT_GE(report.attempts, static_cast<std::int64_t>(report.requests));
}

TEST(ChaosTest, MixedSeuAndAccumulatorFaultsStayCorrect) {
  // Key SEUs plus a transiently flaky accumulator on replica 1: the
  // witness-verify path must absorb both without serving a wrong answer.
  const ChaosModelBundle bundle = make_chaos_model(33);
  ChaosScenario scenario;
  scenario.requests = 24;
  scenario.batch = 2;
  scenario.seed = 9;
  scenario.key_seu_rate = 0.1;
  scenario.config.replicas = 4;
  scenario.plans.resize(2);
  scenario.plans[1].initial = hw::FaultPlan{};
  scenario.plans[1].initial->accumulator_flip_rate = 0.02;
  scenario.plans[1].initial->seed = 1234;

  const ChaosReport report = run_chaos_scenario(bundle, scenario);
  EXPECT_EQ(report.wrong, 0);
  EXPECT_EQ(report.succeeded + report.retry_exhausted + report.timeouts +
                report.unavailable,
            report.requests);
  EXPECT_GE(report.succeeded,
            (report.requests * 99) / 100);  // >= 99% availability
}

TEST_F(ChaosDeterminismTest, TwoRunsAreByteIdentical) {
  const ChaosModelBundle bundle = make_chaos_model(33);
  ChaosScenario scenario;
  scenario.requests = 16;
  scenario.batch = 2;
  scenario.seed = 21;
  scenario.key_seu_rate = 0.2;
  scenario.config.replicas = 3;

  const ChaosReport a = run_chaos_scenario(bundle, scenario);
  const ChaosReport b = run_chaos_scenario(bundle, scenario);

  EXPECT_EQ(a.succeeded, b.succeeded);
  EXPECT_EQ(a.wrong, b.wrong);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.seus_injected, b.seus_injected);
  EXPECT_EQ(a.pool.quarantines, b.pool.quarantines);
  EXPECT_EQ(a.pool.reprovisions, b.pool.reprovisions);
  EXPECT_EQ(a.virtual_elapsed_us, b.virtual_elapsed_us);
  // The deterministic metrics snapshot — every counter and histogram count
  // the run produced — must match byte for byte.
  EXPECT_EQ(a.metrics_json, b.metrics_json);

  std::ostringstream ja, jb;
  write_chaos_json(ja, scenario, a);
  write_chaos_json(jb, scenario, b);
  EXPECT_EQ(ja.str(), jb.str());
  EXPECT_NE(ja.str().find("\"bench\":\"serve_chaos\""), std::string::npos);
}

}  // namespace
}  // namespace hpnn::serve
