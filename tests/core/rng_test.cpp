#include "core/rng.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

#include <algorithm>
#include <cmath>
#include <set>

namespace hpnn {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 32; ++i) {
    differences += (a() != b());
  }
  EXPECT_GT(differences, 28);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    sum += rng.uniform();
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(RngTest, UniformIndexCoversAllValues) {
  Rng rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_index(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, UniformIndexRejectsZero) {
  Rng rng(13);
  EXPECT_THROW(rng.uniform_index(0), InvariantError);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(17);
  constexpr int kN = 50000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double v = rng.normal();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kN, 1.0, 0.03);
}

TEST(RngTest, NormalWithParameters) {
  Rng rng(19);
  constexpr int kN = 30000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) {
    sum += rng.normal(5.0, 0.5);
  }
  EXPECT_NEAR(sum / kN, 5.0, 0.02);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    hits += rng.bernoulli(0.3);
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.02);
}

TEST(RngTest, PermutationIsValid) {
  Rng rng(29);
  const auto perm = rng.permutation(100);
  ASSERT_EQ(perm.size(), 100u);
  std::vector<bool> seen(100, false);
  for (const auto p : perm) {
    ASSERT_LT(p, 100u);
    EXPECT_FALSE(seen[p]);
    seen[p] = true;
  }
}

TEST(RngTest, PermutationOfZeroAndOne) {
  Rng rng(31);
  EXPECT_TRUE(rng.permutation(0).empty());
  const auto one = rng.permutation(1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 0u);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng rng(37);
  Rng child = rng.split();
  // The child stream should not reproduce the parent stream.
  Rng parent_copy(37);
  (void)parent_copy();  // align with the split() draw
  int same = 0;
  for (int i = 0; i < 16; ++i) {
    same += (child() == parent_copy());
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, WorksWithStdDistributions) {
  Rng rng(41);
  // UniformRandomBitGenerator interface sanity.
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~std::uint64_t{0});
  EXPECT_NE(rng(), rng());
}

}  // namespace
}  // namespace hpnn
