// Registry and selection-policy contracts of the compute-backend layer.
//
// These tests exercise core/compute_backend directly with fake backends so
// the policy is testable without the tensor layer: registration
// uniqueness, fail-closed resolution (unknown AND unsupported names
// throw), auto-pick by priority, the legacy HPNN_SIMD mapping, and epoch
// monotonicity. The real tiers are swept by the conformance kit in
// tests/tensor/backend_conformance_test.cpp.
#include "core/compute_backend.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/error.hpp"
#include "tensor/backend.hpp"

namespace hpnn::core {
namespace {

/// Minimal backend: scalar-equivalent semantics, configurable identity.
class FakeBackend : public ComputeBackend {
 public:
  FakeBackend(std::string name, bool supported, int priority)
      : name_(std::move(name)), supported_(supported), priority_(priority) {}

  std::string name() const override { return name_; }
  std::string description() const override { return "test double"; }
  bool supported() const override { return supported_; }
  int priority() const override { return priority_; }

  std::int64_t gemm_mr() const override { return 6; }
  std::int64_t gemm_nr() const override { return 16; }
  void gemm_micro(const float*, const float*, std::int64_t, float*,
                  std::int64_t, std::int64_t, std::int64_t,
                  float) const override {}
  void relu(const float*, float*, std::int64_t) const override {}
  void relu_mask(const float*, float*, std::int64_t) const override {}
  void mul(const float*, const float*, float*, std::int64_t) const override {}
  void axpy(float, const float*, float*, std::int64_t) const override {}
  void add_scalar(float, float*, std::int64_t) const override {}
  float dot(const float*, const float*, std::int64_t) const override {
    return 0.0f;
  }
  void lock_relu_grad(const float*, const float*, const float*, float*,
                      std::int64_t) const override {}
  void matmul_i8(const std::int8_t*, std::int64_t, std::int64_t,
                 const std::int8_t*, std::int64_t, const std::uint8_t*,
                 std::int32_t*) const override {}

 private:
  std::string name_;
  bool supported_;
  int priority_;
};

/// Restores the entering backend selection on scope exit.
class ActiveRestorer {
 public:
  ActiveRestorer() : name_(ops::backend().name()) {}
  ~ActiveRestorer() { set_active_compute_backend(name_); }

 private:
  std::string name_;
};

/// Registers a fake once per process (the registry has process lifetime,
/// so repeated test runs within one binary must not re-register).
void register_fake_once(const std::string& name, bool supported,
                        int priority) {
  if (find_compute_backend(name) == nullptr) {
    register_compute_backend(
        std::make_unique<FakeBackend>(name, supported, priority));
  }
}

TEST(BackendEnvPolicyTest, ExplicitBackendNameWins) {
  EXPECT_EQ(backend_name_from_env("avx2", nullptr), "avx2");
  EXPECT_EQ(backend_name_from_env("avx512", "off"), "avx512");
  EXPECT_EQ(backend_name_from_env("scalar", "1"), "scalar");
}

TEST(BackendEnvPolicyTest, LegacySimdKillSwitchForcesScalar) {
  for (const char* off : {"off", "0", "false", "scalar"}) {
    EXPECT_EQ(backend_name_from_env(nullptr, off), "scalar") << off;
    EXPECT_EQ(backend_name_from_env("", off), "scalar") << off;
  }
}

TEST(BackendEnvPolicyTest, UnsetOrEnablingValuesAutoPick) {
  EXPECT_EQ(backend_name_from_env(nullptr, nullptr), "");
  EXPECT_EQ(backend_name_from_env("", nullptr), "");
  // Any HPNN_SIMD value other than the kill-switch spellings means "SIMD
  // allowed" — auto-pick, not a forced name.
  EXPECT_EQ(backend_name_from_env(nullptr, "1"), "");
  EXPECT_EQ(backend_name_from_env(nullptr, "on"), "");
  EXPECT_EQ(backend_name_from_env(nullptr, "avx2"), "");
}

TEST(BackendRegistryTest, DuplicateNameThrows) {
  register_fake_once("conftest-dup", true, -100);
  EXPECT_THROW(register_compute_backend(
                   std::make_unique<FakeBackend>("conftest-dup", true, -100)),
               InvariantError);
}

TEST(BackendRegistryTest, NullBackendThrows) {
  EXPECT_THROW(register_compute_backend(nullptr), InvariantError);
}

TEST(BackendRegistryTest, LookupIsFailClosed) {
  EXPECT_EQ(find_compute_backend("conftest-missing"), nullptr);
  EXPECT_THROW(compute_backend_by_name("conftest-missing"), UsageError);
}

TEST(BackendRegistryTest, SettingUnknownOrUnsupportedThrows) {
  ActiveRestorer restore;
  register_fake_once("conftest-unsupported", false, -100);
  const std::string before = active_compute_backend().name();
  EXPECT_THROW(set_active_compute_backend("conftest-missing"), UsageError);
  EXPECT_THROW(set_active_compute_backend("conftest-unsupported"), UsageError);
  // A failed switch never falls back and never changes the selection.
  EXPECT_EQ(active_compute_backend().name(), before);
}

TEST(BackendRegistryTest, EpochAdvancesOnEverySwitch) {
  ActiveRestorer restore;
  register_fake_once("conftest-a", true, -100);
  const std::uint64_t e0 = compute_backend_epoch();
  set_active_compute_backend("conftest-a");
  const std::uint64_t e1 = compute_backend_epoch();
  EXPECT_GT(e1, e0);
  // Re-selecting the same backend still bumps: callers use the epoch as a
  // conservative "anything might have moved" signal.
  set_active_compute_backend("conftest-a");
  EXPECT_GT(compute_backend_epoch(), e1);
}

TEST(BackendRegistryTest, FailedSwitchDoesNotInvalidateCaches) {
  ActiveRestorer restore;
  const std::uint64_t e0 = compute_backend_epoch();
  EXPECT_THROW(set_active_compute_backend("conftest-missing"), UsageError);
  EXPECT_EQ(compute_backend_epoch(), e0);
}

TEST(BackendRegistryTest, AutoPickPrefersHighestPrioritySupported) {
  // The unsupported fake has the numerically greatest priority of the
  // fakes; auto-pick must skip it. The built-in tiers all have priority
  // >= 0, so the winner is a real tier, never a fake.
  register_fake_once("conftest-unsupported", false, -100);
  register_fake_once("conftest-a", true, -100);
  ActiveRestorer restore;
  const ComputeBackend& active = active_compute_backend();
  EXPECT_TRUE(active.supported());
  EXPECT_GE(active.priority(), 0);
}

}  // namespace
}  // namespace hpnn::core
