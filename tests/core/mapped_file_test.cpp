#include "core/mapped_file.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>

#include "core/error.hpp"

namespace hpnn::core {
namespace {

namespace fs = std::filesystem;

class MappedFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/mapped_file_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }

  std::string write_file(const std::string& name, const std::string& body) {
    const std::string path = dir_ + "/" + name;
    std::ofstream os(path, std::ios::binary);
    os << body;
    return path;
  }

  std::string dir_;
};

TEST_F(MappedFileTest, BytesMatchFileContent) {
  const std::string body = "hello mapped world\x00\x01\x02 tail";
  const std::string path = write_file("f.bin", body);
  MappedFile file(path);
  ASSERT_EQ(file.size(), body.size());
  EXPECT_EQ(std::memcmp(file.bytes().data(), body.data(), body.size()), 0);
  EXPECT_EQ(file.path(), path);
}

TEST_F(MappedFileTest, EmptyFileMapsToEmptyView) {
  const std::string path = write_file("empty.bin", "");
  MappedFile file(path);
  EXPECT_EQ(file.size(), 0u);
  EXPECT_TRUE(file.bytes().empty());
}

TEST_F(MappedFileTest, MissingFileThrows) {
  EXPECT_THROW(MappedFile(dir_ + "/nope.bin"), SerializationError);
}

TEST_F(MappedFileTest, DefaultConstructedIsEmpty) {
  MappedFile file;
  EXPECT_EQ(file.size(), 0u);
  EXPECT_FALSE(file.is_mapped());
}

TEST_F(MappedFileTest, MoveTransfersTheMapping) {
  const std::string body(10000, 'x');
  const std::string path = write_file("big.bin", body);
  MappedFile a(path);
  const auto* before = a.bytes().data();
  MappedFile b(std::move(a));
  EXPECT_EQ(b.size(), body.size());
  if (b.is_mapped()) {
    // A real mapping travels without the bytes moving in memory.
    EXPECT_EQ(b.bytes().data(), before);
  }
  EXPECT_EQ(std::memcmp(b.bytes().data(), body.data(), body.size()), 0);

  MappedFile c;
  c = std::move(b);
  EXPECT_EQ(c.size(), body.size());
  EXPECT_EQ(std::memcmp(c.bytes().data(), body.data(), body.size()), 0);
}

TEST_F(MappedFileTest, MappingSurvivesRenameOver) {
  const std::string body = "original bytes that must stay visible";
  const std::string path = write_file("target.bin", body);
  MappedFile file(path);
  const std::string other = write_file("replacement.bin", "REPLACED");
  fs::rename(other, path);
  // The old inode is pinned by the mapping (or copied into the fallback
  // buffer) — either way the view still shows the original content.
  ASSERT_EQ(file.size(), body.size());
  EXPECT_EQ(std::memcmp(file.bytes().data(), body.data(), body.size()), 0);
}

}  // namespace
}  // namespace hpnn::core
