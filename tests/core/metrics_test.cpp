// Registry semantics of the observability layer: create/lookup/reset,
// histogram bucket edges, exporters, trace ring buffer, and the snapshot
// determinism contract (DESIGN.md §9).
#include "core/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <thread>

#include "core/error.hpp"

namespace hpnn::metrics {
namespace {

MetricsRegistry& reg() { return MetricsRegistry::instance(); }

TEST(MetricsRegistryTest, CounterCreateLookupReset) {
  Counter& c = reg().counter("test.registry.counter");
  c.reset();
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  // Lookup by the same name returns the same instrument.
  EXPECT_EQ(&reg().counter("test.registry.counter"), &c);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(MetricsRegistryTest, GaugeLastWriteWins) {
  Gauge& g = reg().gauge("test.registry.gauge");
  g.set(1.5);
  g.set(-3.25);
  EXPECT_DOUBLE_EQ(g.value(), -3.25);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(MetricsRegistryTest, KindMismatchThrows) {
  reg().counter("test.registry.kind");
  EXPECT_THROW(reg().gauge("test.registry.kind"), InvariantError);
  EXPECT_THROW(reg().histogram("test.registry.kind"), InvariantError);
}

TEST(MetricsRegistryTest, RegistryResetZeroesButKeepsReferences) {
  Counter& c = reg().counter("test.registry.global_reset");
  c.add(7);
  reg().reset();
  EXPECT_EQ(c.value(), 0u);  // same instrument, zeroed
  EXPECT_EQ(&reg().counter("test.registry.global_reset"), &c);
}

TEST(HistogramTest, BucketEdgesAreInclusiveUpperBounds) {
  Histogram h({1.0, 2.0, 5.0});
  h.observe(0.5);  // bucket 0: (-inf, 1]
  h.observe(1.0);  // bucket 0 (inclusive upper edge)
  h.observe(1.5);  // bucket 1: (1, 2]
  h.observe(5.0);  // bucket 2: (2, 5]
  h.observe(7.0);  // overflow: (5, +inf)
  const auto buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 15.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 7.0);
}

TEST(HistogramTest, RejectsBadEdges) {
  EXPECT_THROW(Histogram({}), InvariantError);
  EXPECT_THROW(Histogram({1.0, 1.0}), InvariantError);
  EXPECT_THROW(Histogram({2.0, 1.0}), InvariantError);
}

TEST(HistogramTest, PercentilesAreOrderedAndBounded) {
  Histogram h({10.0, 100.0, 1000.0});
  for (int i = 1; i <= 100; ++i) {
    h.observe(static_cast<double>(i * 9));  // 9 .. 900
  }
  const double p50 = h.percentile(0.50);
  const double p95 = h.percentile(0.95);
  const double p99 = h.percentile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, h.max());
  EXPECT_GT(p50, 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), p50);  // pure function of the state
}

TEST(HistogramTest, EmptyHistogramPercentileIsZero) {
  Histogram h({1.0});
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
}

TEST(HistogramTest, ResetZeroesEverything) {
  Histogram& h = reg().histogram("test.hist.reset", {1.0, 2.0});
  h.observe(1.5);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  for (const auto b : h.bucket_counts()) {
    EXPECT_EQ(b, 0u);
  }
}

TEST(HistogramTest, EmptyEdgeListSelectsDefaultTimeEdges) {
  Histogram& h = reg().histogram("test.hist.default_edges");
  EXPECT_EQ(h.edges(), Histogram::default_time_edges_us());
}

TEST(SnapshotTest, EntriesAreSortedByName) {
  reg().counter("test.snapshot.zz");
  reg().counter("test.snapshot.aa");
  const Snapshot snap = reg().snapshot();
  for (std::size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].name, snap.counters[i].name);
  }
}

TEST(SnapshotTest, DeterministicJsonIsByteIdenticalAcrossIdenticalRuns) {
  // The determinism contract: counters and histogram sample counts are
  // pure functions of the work, so two identical single-threaded runs
  // export byte-identical deterministic snapshots.
  auto run_workload = [] {
    reg().reset();
    Counter& c = reg().counter("test.determinism.counter");
    Histogram& h = reg().histogram("test.determinism.hist", {10.0, 100.0});
    for (int i = 0; i < 100; ++i) {
      c.add(3);
      h.observe(static_cast<double>(i));
    }
    std::ostringstream os;
    write_json(os, reg().snapshot(), /*deterministic=*/true);
    return os.str();
  };
  const std::string first = run_workload();
  const std::string second = run_workload();
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("\"test.determinism.counter\": 300"),
            std::string::npos);
}

TEST(SnapshotTest, DeterministicViewOmitsWallClockFields) {
  reg().reset();
  reg().gauge("test.snapshot.gauge").set(1.0);
  reg().histogram("test.snapshot.timing", {1.0}).observe(0.5);
  const Snapshot snap = reg().snapshot();

  std::ostringstream full;
  write_json(full, snap, /*deterministic=*/false);
  EXPECT_NE(full.str().find("\"gauges\""), std::string::npos);
  EXPECT_NE(full.str().find("\"sum\""), std::string::npos);
  EXPECT_NE(full.str().find("\"p95\""), std::string::npos);

  std::ostringstream det;
  write_json(det, snap, /*deterministic=*/true);
  EXPECT_EQ(det.str().find("\"gauges\""), std::string::npos);
  EXPECT_EQ(det.str().find("\"sum\""), std::string::npos);
  EXPECT_EQ(det.str().find("\"p95\""), std::string::npos);
  EXPECT_NE(det.str().find("\"count\": 1"), std::string::npos);
}

TEST(SnapshotTest, CsvExportListsEveryInstrument) {
  reg().reset();
  reg().counter("test.csv.counter").add(5);
  reg().histogram("test.csv.hist", {1.0}).observe(0.5);
  std::ostringstream os;
  write_csv(os, reg().snapshot());
  const std::string csv = os.str();
  EXPECT_NE(csv.find("kind,name,field,value"), std::string::npos);
  EXPECT_NE(csv.find("counter,test.csv.counter,value,5"), std::string::npos);
  EXPECT_NE(csv.find("histogram,test.csv.hist,count,1"), std::string::npos);
  EXPECT_NE(csv.find("histogram,test.csv.hist,p99,"), std::string::npos);
}

TEST(SnapshotTest, WriteSnapshotFilePicksFormatByExtension) {
  reg().counter("test.file.counter").add(1);
  const std::string json_path = ::testing::TempDir() + "metrics_snap.json";
  const std::string csv_path = ::testing::TempDir() + "metrics_snap.csv";
  EXPECT_TRUE(write_snapshot_file(json_path));
  EXPECT_TRUE(write_snapshot_file(csv_path));
  EXPECT_FALSE(write_snapshot_file("/nonexistent-dir-hpnn/x.json"));
  std::remove(json_path.c_str());
  std::remove(csv_path.c_str());
}

#ifndef HPNN_METRICS_DISABLED
TEST(KillSwitchTest, RuntimeDisableStopsMacroCollection) {
  Counter& c = reg().counter("test.killswitch.counter");
  c.reset();
  const bool was = enabled();
  set_enabled(false);
  EXPECT_FALSE(enabled());
  HPNN_METRIC_COUNT("test.killswitch.counter", 1);
  EXPECT_EQ(c.value(), 0u);
  set_enabled(true);
  HPNN_METRIC_COUNT("test.killswitch.counter", 1);
  EXPECT_EQ(c.value(), 1u);
  set_enabled(was);
  c.reset();
}
#endif

TEST(ScopedTimerTest, ObservesElapsedIntoHistogram) {
  Histogram h({1000000.0});
  { ScopedTimer t(&h); }
  EXPECT_EQ(h.count(), 1u);
  { ScopedTimer t(nullptr); }  // no-op form
  EXPECT_EQ(h.count(), 1u);
}

TEST(TraceBufferTest, RingOverwritesOldestAfterCapacity) {
  TraceBuffer& buf = TraceBuffer::instance();
  buf.reset();
  const std::size_t cap = buf.capacity();
  const std::size_t total = cap + 10;
  for (std::size_t i = 0; i < total; ++i) {
    buf.record("test.ring", static_cast<std::uint64_t>(i), 1);
  }
  EXPECT_EQ(buf.total_recorded(), total);
  const auto events = buf.events();
  ASSERT_EQ(events.size(), cap);
  // Oldest retained event is record #10; newest is the last record.
  EXPECT_EQ(events.front().start_us, 10u);
  EXPECT_EQ(events.back().start_us, static_cast<std::uint64_t>(total - 1));
  buf.reset();
  EXPECT_EQ(buf.total_recorded(), 0u);
  EXPECT_TRUE(buf.events().empty());
}

TEST(TraceBufferTest, TraceSpanRecordsOnDestruction) {
  if (!enabled()) {
    GTEST_SKIP() << "metrics disabled";
  }
  TraceBuffer& buf = TraceBuffer::instance();
  buf.reset();
  { TraceSpan span("test.span"); }
  const auto events = buf.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "test.span");
  EXPECT_EQ(events[0].lane, thread_ordinal());
  std::ostringstream os;
  buf.write_json(os);
  EXPECT_NE(os.str().find("\"test.span\""), std::string::npos);
  buf.reset();
}

TEST(ThreadOrdinalTest, StablePerThreadAndDistinctAcrossThreads) {
  const int mine = thread_ordinal();
  EXPECT_EQ(thread_ordinal(), mine);
  int other = mine;
  std::thread t([&] { other = thread_ordinal(); });
  t.join();
  EXPECT_NE(other, mine);
}

}  // namespace
}  // namespace hpnn::metrics
