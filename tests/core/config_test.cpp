#include "core/config.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace hpnn {
namespace {

TEST(ConfigTest, FallbackWhenUnset) {
  ::unsetenv("HPNN_TEST_UNSET");
  EXPECT_EQ(env_int("HPNN_TEST_UNSET", 42), 42);
  EXPECT_EQ(env_double("HPNN_TEST_UNSET", 1.5), 1.5);
  EXPECT_EQ(env_string("HPNN_TEST_UNSET", "dflt"), "dflt");
}

TEST(ConfigTest, ReadsIntegers) {
  ::setenv("HPNN_TEST_INT", "-17", 1);
  EXPECT_EQ(env_int("HPNN_TEST_INT", 0), -17);
  ::unsetenv("HPNN_TEST_INT");
}

TEST(ConfigTest, ReadsDoubles) {
  ::setenv("HPNN_TEST_DBL", "2.75", 1);
  EXPECT_EQ(env_double("HPNN_TEST_DBL", 0.0), 2.75);
  ::unsetenv("HPNN_TEST_DBL");
}

TEST(ConfigTest, ReadsStrings) {
  ::setenv("HPNN_TEST_STR", "value", 1);
  EXPECT_EQ(env_string("HPNN_TEST_STR", ""), "value");
  ::unsetenv("HPNN_TEST_STR");
}

TEST(ConfigTest, MalformedIntFallsBack) {
  ::setenv("HPNN_TEST_BAD", "12abc", 1);
  EXPECT_EQ(env_int("HPNN_TEST_BAD", 7), 7);
  ::setenv("HPNN_TEST_BAD", "abc", 1);
  EXPECT_EQ(env_int("HPNN_TEST_BAD", 7), 7);
  ::unsetenv("HPNN_TEST_BAD");
}

TEST(ConfigTest, MalformedDoubleFallsBack) {
  ::setenv("HPNN_TEST_BAD2", "1.5x", 1);
  EXPECT_EQ(env_double("HPNN_TEST_BAD2", 9.0), 9.0);
  ::unsetenv("HPNN_TEST_BAD2");
}

}  // namespace
}  // namespace hpnn
