#include "core/serialize.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "core/error.hpp"
#include "core/mapped_file.hpp"

namespace hpnn {
namespace {

TEST(SerializeTest, ScalarRoundTrip) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.write_u8(0xAB);
  w.write_u32(0xDEADBEEF);
  w.write_u64(0x1122334455667788ULL);
  w.write_i64(-42);
  w.write_f32(3.25f);
  w.write_f64(-1e100);

  BinaryReader r(ss);
  EXPECT_EQ(r.read_u8(), 0xAB);
  EXPECT_EQ(r.read_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.read_u64(), 0x1122334455667788ULL);
  EXPECT_EQ(r.read_i64(), -42);
  EXPECT_EQ(r.read_f32(), 3.25f);
  EXPECT_EQ(r.read_f64(), -1e100);
}

TEST(SerializeTest, StringRoundTrip) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.write_string("");
  w.write_string("hello world");
  w.write_string(std::string("\0binary\0", 8));

  BinaryReader r(ss);
  EXPECT_EQ(r.read_string(), "");
  EXPECT_EQ(r.read_string(), "hello world");
  EXPECT_EQ(r.read_string(), std::string("\0binary\0", 8));
}

TEST(SerializeTest, VectorRoundTrip) {
  std::stringstream ss;
  BinaryWriter w(ss);
  const std::vector<float> fs{1.0f, -2.5f, 0.0f};
  const std::vector<std::uint8_t> u8s{1, 2, 255};
  const std::vector<std::int64_t> i64s{-1, 0, 1LL << 60};
  w.write_f32_vector(fs);
  w.write_u8_vector(u8s);
  w.write_i64_vector(i64s);

  BinaryReader r(ss);
  EXPECT_EQ(r.read_f32_vector(), fs);
  EXPECT_EQ(r.read_u8_vector(), u8s);
  EXPECT_EQ(r.read_i64_vector(), i64s);
}

TEST(SerializeTest, EmptyVectorRoundTrip) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.write_f32_vector({});
  BinaryReader r(ss);
  EXPECT_TRUE(r.read_f32_vector().empty());
}

TEST(SerializeTest, TruncatedInputThrows) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.write_u64(77);
  std::string payload = ss.str();
  payload.resize(payload.size() - 1);
  std::stringstream truncated(payload);
  BinaryReader r(truncated);
  EXPECT_THROW(r.read_u64(), SerializationError);
}

TEST(SerializeTest, CorruptLengthFieldThrows) {
  std::stringstream ss;
  BinaryWriter w(ss);
  // Claim a gigantic vector without providing data.
  w.write_u64(~std::uint64_t{0});
  BinaryReader r(ss);
  EXPECT_THROW(r.read_f32_vector(), SerializationError);
}

TEST(SerializeTest, ContainerBoundIsEnforced) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.write_u64(1000);  // 1000 floats = 4000 bytes
  BinaryReader r(ss, /*max_container_bytes=*/100);
  EXPECT_THROW(r.read_f32_vector(), SerializationError);
}

TEST(SerializeTest, LengthBeyondRemainingStreamRejectedBeforeAlloc) {
  // 2^31 bytes claimed but only 8 bytes present: the reader must compare
  // the declared length against the physically remaining input and throw
  // instead of attempting a 2 GiB resize (std::bad_alloc / OOM-killer).
  std::stringstream ss;
  BinaryWriter w(ss);
  w.write_u64(std::uint64_t{1} << 31);
  BinaryReader r(ss);
  EXPECT_THROW(r.read_u8_vector(), SerializationError);
}

TEST(SerializeTest, RemainingBytesProbeMatchesStream) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.write_u64(42);
  BinaryReader r(ss);
  EXPECT_EQ(r.remaining_bytes_or(0), 8u);
  (void)r.read_u64();
  EXPECT_EQ(r.remaining_bytes_or(0), 0u);
}

TEST(SerializeTest, StringTruncationThrows) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.write_u64(10);  // claims 10 chars, provides none
  BinaryReader r(ss);
  EXPECT_THROW(r.read_string(), SerializationError);
}

core::ByteView as_bytes(const std::string& s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

TEST(SerializeTest, SpanReaderMatchesStreamReader) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.write_u32(0xC0FFEEu);
  w.write_string("span mode");
  w.write_f32_vector({1.5f, -2.0f});
  const std::string bytes = ss.str();

  BinaryReader r(as_bytes(bytes));
  EXPECT_TRUE(r.span_mode());
  EXPECT_EQ(r.read_u32(), 0xC0FFEEu);
  EXPECT_EQ(r.read_string(), "span mode");
  EXPECT_EQ(r.read_f32_vector(), (std::vector<float>{1.5f, -2.0f}));
  EXPECT_EQ(r.remaining_bytes_or(99), 0u);
}

TEST(SerializeTest, SpanReaderTruncationThrows) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.write_u64(1000);  // claims 1000 floats, provides none
  const std::string bytes = ss.str();
  BinaryReader r(as_bytes(bytes));
  EXPECT_THROW(r.read_f32_vector(), SerializationError);
  BinaryReader r2(as_bytes(bytes).subspan(0, 4));
  EXPECT_THROW(r2.read_u64(), SerializationError);
}

TEST(SerializeTest, AlignedF32ArrayRoundTripsAtOddOffsets) {
  // Write a string first so the array's natural position is misaligned;
  // the writer must insert padding so data starts 64-byte aligned relative
  // to (position + bias), and both readers must consume the same padding.
  constexpr std::uint64_t kBias = 16;
  const std::vector<float> values{1.0f, 2.0f, 3.0f, 4.0f, 5.0f};
  std::stringstream ss;
  BinaryWriter w(ss);
  w.write_string("odd-length-prefix!");
  w.write_f32_array_aligned(values, 64, kBias);
  const std::string bytes = ss.str();

  std::stringstream stream_in(bytes);
  BinaryReader sr(stream_in);
  EXPECT_EQ(sr.read_string(), "odd-length-prefix!");
  EXPECT_EQ(sr.read_f32_array_aligned(64, kBias), values);

  BinaryReader pr(as_bytes(bytes));
  EXPECT_EQ(pr.read_string(), "odd-length-prefix!");
  const std::span<const float> view = pr.view_f32_array_aligned(64, kBias);
  ASSERT_EQ(view.size(), values.size());
  EXPECT_TRUE(std::equal(view.begin(), view.end(), values.begin()));
  // The view aliases the input span at a (position + bias) % 64 == 0 spot.
  const auto* base = reinterpret_cast<const std::uint8_t*>(bytes.data());
  const auto off = static_cast<std::uint64_t>(
      reinterpret_cast<const std::uint8_t*>(view.data()) - base);
  EXPECT_EQ((off + kBias) % 64, 0u);
}

TEST(SerializeTest, ViewU8ArrayAliasesInput) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.write_u8_vector({9, 8, 7});
  const std::string bytes = ss.str();
  BinaryReader r(as_bytes(bytes));
  const core::ByteView view = r.view_u8_array();
  ASSERT_EQ(view.size(), 3u);
  EXPECT_EQ(view[0], 9);
  EXPECT_GE(reinterpret_cast<const char*>(view.data()), bytes.data());
  EXPECT_LE(reinterpret_cast<const char*>(view.data()) + view.size(),
            bytes.data() + bytes.size());
}

TEST(SerializeTest, ViewMethodsRequireSpanMode) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.write_u8_vector({1});
  BinaryReader r(ss);
  EXPECT_FALSE(r.span_mode());
  EXPECT_THROW((void)r.view_u8_array(), InvariantError);
}

TEST(SerializeTest, AlignedArrayTruncatedPaddingThrows) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.write_f32_array_aligned({1.0f, 2.0f}, 64, 0);
  std::string bytes = ss.str();
  // Chop inside the padding/data region: both readers must throw rather
  // than return a short array.
  bytes.resize(bytes.size() - 5);
  BinaryReader pr(as_bytes(bytes));
  EXPECT_THROW((void)pr.view_f32_array_aligned(64, 0), SerializationError);
  std::stringstream truncated(bytes);
  BinaryReader sr(truncated);
  EXPECT_THROW((void)sr.read_f32_array_aligned(64, 0), SerializationError);
}

}  // namespace
}  // namespace hpnn
