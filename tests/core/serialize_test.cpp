#include "core/serialize.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/error.hpp"

namespace hpnn {
namespace {

TEST(SerializeTest, ScalarRoundTrip) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.write_u8(0xAB);
  w.write_u32(0xDEADBEEF);
  w.write_u64(0x1122334455667788ULL);
  w.write_i64(-42);
  w.write_f32(3.25f);
  w.write_f64(-1e100);

  BinaryReader r(ss);
  EXPECT_EQ(r.read_u8(), 0xAB);
  EXPECT_EQ(r.read_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.read_u64(), 0x1122334455667788ULL);
  EXPECT_EQ(r.read_i64(), -42);
  EXPECT_EQ(r.read_f32(), 3.25f);
  EXPECT_EQ(r.read_f64(), -1e100);
}

TEST(SerializeTest, StringRoundTrip) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.write_string("");
  w.write_string("hello world");
  w.write_string(std::string("\0binary\0", 8));

  BinaryReader r(ss);
  EXPECT_EQ(r.read_string(), "");
  EXPECT_EQ(r.read_string(), "hello world");
  EXPECT_EQ(r.read_string(), std::string("\0binary\0", 8));
}

TEST(SerializeTest, VectorRoundTrip) {
  std::stringstream ss;
  BinaryWriter w(ss);
  const std::vector<float> fs{1.0f, -2.5f, 0.0f};
  const std::vector<std::uint8_t> u8s{1, 2, 255};
  const std::vector<std::int64_t> i64s{-1, 0, 1LL << 60};
  w.write_f32_vector(fs);
  w.write_u8_vector(u8s);
  w.write_i64_vector(i64s);

  BinaryReader r(ss);
  EXPECT_EQ(r.read_f32_vector(), fs);
  EXPECT_EQ(r.read_u8_vector(), u8s);
  EXPECT_EQ(r.read_i64_vector(), i64s);
}

TEST(SerializeTest, EmptyVectorRoundTrip) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.write_f32_vector({});
  BinaryReader r(ss);
  EXPECT_TRUE(r.read_f32_vector().empty());
}

TEST(SerializeTest, TruncatedInputThrows) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.write_u64(77);
  std::string payload = ss.str();
  payload.resize(payload.size() - 1);
  std::stringstream truncated(payload);
  BinaryReader r(truncated);
  EXPECT_THROW(r.read_u64(), SerializationError);
}

TEST(SerializeTest, CorruptLengthFieldThrows) {
  std::stringstream ss;
  BinaryWriter w(ss);
  // Claim a gigantic vector without providing data.
  w.write_u64(~std::uint64_t{0});
  BinaryReader r(ss);
  EXPECT_THROW(r.read_f32_vector(), SerializationError);
}

TEST(SerializeTest, ContainerBoundIsEnforced) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.write_u64(1000);  // 1000 floats = 4000 bytes
  BinaryReader r(ss, /*max_container_bytes=*/100);
  EXPECT_THROW(r.read_f32_vector(), SerializationError);
}

TEST(SerializeTest, LengthBeyondRemainingStreamRejectedBeforeAlloc) {
  // 2^31 bytes claimed but only 8 bytes present: the reader must compare
  // the declared length against the physically remaining input and throw
  // instead of attempting a 2 GiB resize (std::bad_alloc / OOM-killer).
  std::stringstream ss;
  BinaryWriter w(ss);
  w.write_u64(std::uint64_t{1} << 31);
  BinaryReader r(ss);
  EXPECT_THROW(r.read_u8_vector(), SerializationError);
}

TEST(SerializeTest, RemainingBytesProbeMatchesStream) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.write_u64(42);
  BinaryReader r(ss);
  EXPECT_EQ(r.remaining_bytes_or(0), 8u);
  (void)r.read_u64();
  EXPECT_EQ(r.remaining_bytes_or(0), 0u);
}

TEST(SerializeTest, StringTruncationThrows) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.write_u64(10);  // claims 10 chars, provides none
  BinaryReader r(ss);
  EXPECT_THROW(r.read_string(), SerializationError);
}

}  // namespace
}  // namespace hpnn
