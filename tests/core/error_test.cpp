#include "core/error.hpp"

#include <gtest/gtest.h>

#include <string>

namespace hpnn {
namespace {

TEST(ErrorTest, CheckPassesOnTrueCondition) {
  EXPECT_NO_THROW(HPNN_CHECK(1 + 1 == 2, "math works"));
}

TEST(ErrorTest, CheckThrowsInvariantError) {
  EXPECT_THROW(HPNN_CHECK(false, "boom"), InvariantError);
}

TEST(ErrorTest, CheckMessageContainsContext) {
  try {
    HPNN_CHECK(2 > 3, "custom detail");
    FAIL() << "expected throw";
  } catch (const InvariantError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 > 3"), std::string::npos);
    EXPECT_NE(what.find("custom detail"), std::string::npos);
    EXPECT_NE(what.find("error_test.cpp"), std::string::npos);
  }
}

TEST(ErrorTest, HierarchyIsCatchableAsBase) {
  EXPECT_THROW(throw ShapeError("s"), Error);
  EXPECT_THROW(throw SerializationError("s"), Error);
  EXPECT_THROW(throw KeyError("k"), Error);
  EXPECT_THROW(throw InvariantError("i"), Error);
}

TEST(ErrorTest, BaseIsRuntimeError) {
  EXPECT_THROW(throw Error("e"), std::runtime_error);
}

}  // namespace
}  // namespace hpnn
