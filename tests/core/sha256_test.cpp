#include "core/sha256.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace hpnn {
namespace {

// FIPS 180-4 / NIST test vectors.
TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(to_hex(Sha256::hash(std::string())),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(to_hex(Sha256::hash(std::string("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(
      to_hex(Sha256::hash(std::string(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 hasher;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    hasher.update(chunk);
  }
  EXPECT_EQ(to_hex(hasher.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  const std::string msg = "the quick brown fox jumps over the lazy dog";
  Sha256 hasher;
  for (const char c : msg) {
    hasher.update(std::string(1, c));
  }
  EXPECT_EQ(hasher.finalize(), Sha256::hash(msg));
}

TEST(Sha256Test, PaddingBoundaries) {
  // Lengths around the 55/56/64-byte padding edge cases must all differ and
  // be stable.
  std::string prev;
  for (const std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u}) {
    const std::string hex = to_hex(Sha256::hash(std::string(len, 'x')));
    EXPECT_EQ(hex.size(), 64u);
    EXPECT_NE(hex, prev);
    prev = hex;
  }
}

TEST(Sha256Test, ReuseAfterFinalizeThrows) {
  Sha256 hasher;
  (void)hasher.finalize();
  EXPECT_THROW(hasher.update(std::string("x")), InvariantError);
  Sha256 hasher2;
  (void)hasher2.finalize();
  EXPECT_THROW((void)hasher2.finalize(), InvariantError);
}

TEST(Sha256Test, BinaryData) {
  std::vector<std::uint8_t> data(256);
  for (std::size_t i = 0; i < 256; ++i) {
    data[i] = static_cast<std::uint8_t>(i);
  }
  EXPECT_EQ(to_hex(Sha256::hash(std::span<const std::uint8_t>(data))),
            "40aff2e9d2d8922e47afd4648e6967497158785fbd1da870e7110266bf944880");
}

}  // namespace
}  // namespace hpnn
