#include "nn/layers.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "nn/optim.hpp"

namespace hpnn::nn {
namespace {

TEST(LinearTest, KnownValuesForward) {
  Rng rng(1);
  Linear fc(2, 2, rng, "fc");
  // overwrite with known weights: y = [ [1,2],[3,4] ] x + [10, 20]
  fc.weight().value = Tensor(Shape{2, 2}, std::vector<float>{1, 2, 3, 4});
  fc.bias()->value = Tensor(Shape{2}, std::vector<float>{10, 20});
  Tensor x(Shape{1, 2}, std::vector<float>{5, 6});
  const Tensor y = fc.forward(x);
  EXPECT_FLOAT_EQ(y.at(0, 0), 1 * 5 + 2 * 6 + 10);
  EXPECT_FLOAT_EQ(y.at(0, 1), 3 * 5 + 4 * 6 + 20);
}

TEST(LinearTest, NoBiasOption) {
  Rng rng(2);
  Linear fc(3, 2, rng, "fc", /*bias=*/false);
  EXPECT_EQ(fc.bias(), nullptr);
  std::vector<Parameter*> params;
  fc.collect_parameters(params);
  EXPECT_EQ(params.size(), 1u);
}

TEST(LinearTest, WrongInputWidthThrows) {
  Rng rng(3);
  Linear fc(3, 2, rng);
  Tensor x(Shape{1, 4});
  EXPECT_THROW(fc.forward(x), InvariantError);
}

TEST(LinearTest, BackwardBeforeForwardThrows) {
  Rng rng(4);
  Linear fc(3, 2, rng);
  Tensor g(Shape{1, 2});
  EXPECT_THROW(fc.backward(g), InvariantError);
}

TEST(LinearTest, GradAccumulatesAcrossCalls) {
  Rng rng(5);
  Linear fc(2, 1, rng, "fc", false);
  Tensor x(Shape{1, 2}, std::vector<float>{1, 1});
  Tensor g(Shape{1, 1}, 1.0f);
  (void)fc.forward(x);
  (void)fc.backward(g);
  const float after_one = fc.weight().grad.at(0);
  (void)fc.forward(x);
  (void)fc.backward(g);
  EXPECT_FLOAT_EQ(fc.weight().grad.at(0), 2 * after_one);
}

TEST(ReLUTest, ClampsNegative) {
  ReLU relu;
  Tensor x(Shape{1, 4}, std::vector<float>{-2, -0.5f, 0, 3});
  const Tensor y = relu.forward(x);
  EXPECT_EQ(y.at(0), 0.0f);
  EXPECT_EQ(y.at(1), 0.0f);
  EXPECT_EQ(y.at(2), 0.0f);
  EXPECT_EQ(y.at(3), 3.0f);
}

TEST(ReLUTest, BackwardGatesGradient) {
  ReLU relu;
  Tensor x(Shape{1, 3}, std::vector<float>{-1, 0, 2});
  (void)relu.forward(x);
  Tensor g(Shape{1, 3}, std::vector<float>{10, 10, 10});
  const Tensor gx = relu.backward(g);
  EXPECT_EQ(gx.at(0), 0.0f);
  EXPECT_EQ(gx.at(1), 0.0f);  // convention: gradient 0 at the kink
  EXPECT_EQ(gx.at(2), 10.0f);
}

TEST(FlattenTest, RoundTrip) {
  Flatten f;
  Tensor x = Tensor::arange(Shape{2, 3, 2, 2});
  const Tensor y = f.forward(x);
  EXPECT_EQ(y.shape(), Shape({2, 12}));
  const Tensor gx = f.backward(Tensor(y.shape(), 1.0f));
  EXPECT_EQ(gx.shape(), x.shape());
}

TEST(DropoutTest, EvalModeIsIdentity) {
  Dropout d(0.5, 42);
  d.set_training(false);
  Tensor x(Shape{1, 8}, 3.0f);
  const Tensor y = d.forward(x);
  EXPECT_TRUE(y.allclose(x, 0.0f, 0.0f));
}

TEST(DropoutTest, TrainModeZeroesAndScales) {
  Dropout d(0.5, 42);
  d.set_training(true);
  Tensor x(Shape{1, 1000}, 1.0f);
  const Tensor y = d.forward(x);
  std::int64_t zeros = 0;
  for (const auto v : y.span()) {
    if (v == 0.0f) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(v, 2.0f);  // inverted dropout scaling 1/(1-p)
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 1000.0, 0.5, 0.07);
}

TEST(DropoutTest, BackwardUsesSameMask) {
  Dropout d(0.3, 9);
  d.set_training(true);
  Tensor x(Shape{1, 100}, 1.0f);
  const Tensor y = d.forward(x);
  const Tensor gx = d.backward(Tensor(x.shape(), 1.0f));
  EXPECT_TRUE(gx.allclose(y, 0.0f, 0.0f));
}

TEST(DropoutTest, InvalidProbabilityThrows) {
  EXPECT_THROW(Dropout(1.0, 1), InvariantError);
  EXPECT_THROW(Dropout(-0.1, 1), InvariantError);
}

TEST(Conv2dTest, OutputShape) {
  Rng rng(6);
  ops::Conv2dGeometry g{3, 8, 8, 3, 1, 1};
  Conv2d conv(g, 5, rng, "c");
  const Tensor x = Tensor::normal(Shape{2, 3, 8, 8}, rng);
  EXPECT_EQ(conv.forward(x).shape(), Shape({2, 5, 8, 8}));
}

TEST(Conv2dTest, ParameterShapes) {
  Rng rng(7);
  ops::Conv2dGeometry g{3, 8, 8, 5, 1, 2};
  Conv2d conv(g, 4, rng, "c");
  EXPECT_EQ(conv.weight().value.shape(), Shape({4, 3, 5, 5}));
  std::vector<Parameter*> params;
  conv.collect_parameters(params);
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(params[1]->value.shape(), Shape({4}));
}

TEST(Conv2dTest, EvalRepacksAfterOptimizerStep) {
  Rng rng(11);
  ops::Conv2dGeometry g{2, 6, 6, 3, 1, 1};
  Conv2d conv(g, 4, rng, "c");
  const Tensor x = Tensor::normal(Shape{2, 2, 6, 6}, rng);

  // Train-mode forward packs W_t; the optimizer step then mutates the
  // weights in place, leaving the data pointer unchanged. The following
  // eval forward must serve W_{t+1}, not the stale packing of W_t.
  conv.set_training(true);
  const Tensor y = conv.forward(x);
  (void)conv.backward(Tensor(y.shape(), 1.0f));
  std::vector<Parameter*> params;
  conv.collect_parameters(params);
  Sgd opt(params, {.lr = 0.1});
  opt.step();

  conv.set_training(false);
  const Tensor got = conv.forward(x);

  Conv2d fresh(g, 4, rng, "fresh");
  fresh.weight().assign_value(conv.weight().value);
  fresh.bias()->assign_value(conv.bias()->value);
  fresh.set_training(false);
  const Tensor want = fresh.forward(x);
  EXPECT_TRUE(got.allclose(want, 0.0f, 0.0f));
}

TEST(Conv2dTest, EvalRepacksAfterWeightAssignIntoSameAllocation) {
  Rng rng(12);
  ops::Conv2dGeometry g{2, 6, 6, 3, 1, 1};
  Conv2d conv(g, 4, rng, "c", /*bias=*/false);
  conv.set_training(false);
  const Tensor x = Tensor::normal(Shape{1, 2, 6, 6}, rng);
  (void)conv.forward(x);  // packs the initial weights

  // Same-shape assignment reuses the existing heap block, so the data
  // pointer does not change and only the parameter's mutation counter can
  // signal the rewrite. This is the checkpoint-load path: load_weights()
  // and copy_parameters() assign into an already-packed model.
  const float* storage_before = conv.weight().value.data();
  const Tensor new_w = Tensor::normal(conv.weight().value.shape(), rng);
  conv.weight().assign_value(new_w);
  EXPECT_EQ(conv.weight().value.data(), storage_before);

  const Tensor got = conv.forward(x);

  Conv2d fresh(g, 4, rng, "fresh", /*bias=*/false);
  fresh.weight().assign_value(new_w);
  fresh.set_training(false);
  const Tensor want = fresh.forward(x);
  EXPECT_TRUE(got.allclose(want, 0.0f, 0.0f));
}

TEST(MaxPool2dModuleTest, ForwardBackward) {
  MaxPool2d pool(2, 2);
  Tensor x = Tensor::arange(Shape{1, 1, 4, 4});
  const Tensor y = pool.forward(x);
  EXPECT_EQ(y.shape(), Shape({1, 1, 2, 2}));
  const Tensor gx = pool.backward(Tensor(y.shape(), 1.0f));
  EXPECT_EQ(gx.shape(), x.shape());
  EXPECT_FLOAT_EQ(gx.sum(), 4.0f);
}

TEST(GlobalAvgPoolModuleTest, ForwardBackward) {
  GlobalAvgPool gap;
  Tensor x(Shape{2, 3, 4, 4}, 2.0f);
  const Tensor y = gap.forward(x);
  EXPECT_EQ(y.shape(), Shape({2, 3}));
  EXPECT_FLOAT_EQ(y.at(0, 0), 2.0f);
  const Tensor gx = gap.backward(Tensor(y.shape(), 16.0f));
  EXPECT_FLOAT_EQ(gx.at(0, 0, 0, 0), 1.0f);
}

}  // namespace
}  // namespace hpnn::nn
