#include "nn/batchnorm.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/error.hpp"
#include "core/rng.hpp"

namespace hpnn::nn {
namespace {

TEST(BatchNormTest, NormalizesBatchStatistics) {
  Rng rng(1);
  BatchNorm2d bn(3, "bn");
  bn.set_training(true);
  const Tensor x = Tensor::normal(Shape{8, 3, 4, 4}, rng, 5.0f, 2.0f);
  const Tensor y = bn.forward(x);

  // Per-channel mean ~0, var ~1 after normalization (gamma=1, beta=0).
  const std::int64_t plane = 16;
  for (std::int64_t c = 0; c < 3; ++c) {
    double sum = 0.0;
    double sq = 0.0;
    for (std::int64_t n = 0; n < 8; ++n) {
      for (std::int64_t i = 0; i < plane; ++i) {
        const float v = y.data()[(n * 3 + c) * plane + i];
        sum += v;
        sq += static_cast<double>(v) * v;
      }
    }
    const double mean = sum / (8 * plane);
    const double var = sq / (8 * plane) - mean * mean;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNormTest, GammaBetaApplied) {
  Rng rng(2);
  BatchNorm2d bn(1, "bn");
  bn.gamma().value.fill(3.0f);
  bn.beta().value.fill(-1.0f);
  bn.set_training(true);
  const Tensor x = Tensor::normal(Shape{4, 1, 8, 8}, rng);
  const Tensor y = bn.forward(x);
  double sum = 0.0;
  for (const auto v : y.span()) {
    sum += v;
  }
  EXPECT_NEAR(sum / y.numel(), -1.0, 1e-3);  // mean shifted to beta
}

TEST(BatchNormTest, RunningStatsConverge) {
  Rng rng(3);
  BatchNorm2d bn(2, "bn", /*momentum=*/0.5f);
  bn.set_training(true);
  for (int i = 0; i < 20; ++i) {
    (void)bn.forward(Tensor::normal(Shape{16, 2, 4, 4}, rng, 4.0f, 1.0f));
  }
  EXPECT_NEAR(bn.running_mean().at(0), 4.0f, 0.2f);
  EXPECT_NEAR(bn.running_var().at(0), 1.0f, 0.2f);
}

TEST(BatchNormTest, EvalUsesRunningStats) {
  Rng rng(4);
  BatchNorm2d bn(1, "bn", 0.5f);
  bn.set_training(true);
  for (int i = 0; i < 20; ++i) {
    (void)bn.forward(Tensor::normal(Shape{16, 1, 4, 4}, rng, 2.0f, 1.0f));
  }
  bn.set_training(false);
  // A constant input equal to the running mean must map to ~beta (0).
  Tensor x(Shape{1, 1, 4, 4}, bn.running_mean().at(0));
  const Tensor y = bn.forward(x);
  EXPECT_NEAR(y.at(0), 0.0f, 1e-2f);
}

TEST(BatchNormTest, EvalIsDeterministicPerSample) {
  Rng rng(5);
  BatchNorm2d bn(2, "bn");
  bn.set_training(true);
  (void)bn.forward(Tensor::normal(Shape{8, 2, 3, 3}, rng));
  bn.set_training(false);
  const Tensor a = Tensor::normal(Shape{1, 2, 3, 3}, rng);
  Tensor batch(Shape{2, 2, 3, 3});
  std::copy(a.data(), a.data() + a.numel(), batch.data());
  std::copy(a.data(), a.data() + a.numel(), batch.data() + a.numel());
  const Tensor ya = bn.forward(a);
  const Tensor yb = bn.forward(batch);
  for (std::int64_t i = 0; i < ya.numel(); ++i) {
    EXPECT_FLOAT_EQ(ya.at(i), yb.at(i));           // first sample
    EXPECT_FLOAT_EQ(ya.at(i), yb.at(a.numel() + i));  // second sample
  }
}

TEST(BatchNormTest, WrongChannelCountThrows) {
  BatchNorm2d bn(3, "bn");
  Tensor x(Shape{1, 2, 4, 4});
  EXPECT_THROW(bn.forward(x), InvariantError);
}

TEST(BatchNormTest, SetRunningStatsValidatesShape) {
  BatchNorm2d bn(3, "bn");
  EXPECT_THROW(bn.set_running_stats(Tensor(Shape{2}), Tensor(Shape{3})),
               InvariantError);
  EXPECT_NO_THROW(
      bn.set_running_stats(Tensor(Shape{3}), Tensor(Shape{3}, 1.0f)));
}

TEST(BatchNormTest, BuffersExposed) {
  BatchNorm2d bn(2, "bn");
  std::vector<std::pair<std::string, Tensor*>> buffers;
  bn.collect_buffers(buffers);
  ASSERT_EQ(buffers.size(), 2u);
  EXPECT_EQ(buffers[0].first, "bn.running_mean");
  EXPECT_EQ(buffers[1].first, "bn.running_var");
}

}  // namespace
}  // namespace hpnn::nn
