// Central-difference gradient verification of every layer's backward().
#include "nn/gradcheck.hpp"

#include <gtest/gtest.h>

#include "nn/batchnorm.hpp"
#include "nn/layers.hpp"
#include "nn/residual.hpp"

namespace hpnn::nn {
namespace {

std::vector<std::int64_t> labels_mod(std::int64_t n, std::int64_t classes) {
  std::vector<std::int64_t> labels(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    labels[static_cast<std::size_t>(i)] = i % classes;
  }
  return labels;
}

TEST(GradCheckTest, LinearLayer) {
  Rng rng(1);
  Sequential net;
  net.add(std::make_unique<Linear>(6, 4, rng, "fc"));
  SoftmaxCrossEntropy loss;
  const Tensor x = Tensor::normal(Shape{3, 6}, rng);
  const auto labels = labels_mod(3, 4);
  EXPECT_TRUE(check_input_gradient(net, loss, x, labels).ok);
  EXPECT_TRUE(check_parameter_gradients(net, loss, x, labels).ok);
}

TEST(GradCheckTest, TwoLayerMlpWithRelu) {
  Rng rng(2);
  Sequential net;
  net.add(std::make_unique<Linear>(5, 8, rng, "fc1"));
  net.add(std::make_unique<ReLU>("r"));
  net.add(std::make_unique<Linear>(8, 3, rng, "fc2"));
  SoftmaxCrossEntropy loss;
  const Tensor x = Tensor::normal(Shape{4, 5}, rng);
  const auto labels = labels_mod(4, 3);
  EXPECT_TRUE(check_input_gradient(net, loss, x, labels).ok);
  EXPECT_TRUE(check_parameter_gradients(net, loss, x, labels).ok);
}

TEST(GradCheckTest, ConvPoolNetwork) {
  Rng rng(3);
  Sequential net;
  net.add(std::make_unique<Conv2d>(ops::Conv2dGeometry{2, 6, 6, 3, 1, 1}, 3,
                                   rng, "c1"));
  net.add(std::make_unique<ReLU>("r1"));
  net.add(std::make_unique<MaxPool2d>(2, 2, "p1"));
  net.add(std::make_unique<Flatten>());
  net.add(std::make_unique<Linear>(3 * 3 * 3, 4, rng, "fc"));
  SoftmaxCrossEntropy loss;
  const Tensor x = Tensor::normal(Shape{2, 2, 6, 6}, rng);
  const auto labels = labels_mod(2, 4);
  const auto in_res = check_input_gradient(net, loss, x, labels);
  EXPECT_TRUE(in_res.ok) << "rel err " << in_res.max_rel_err;
  const auto par_res = check_parameter_gradients(net, loss, x, labels);
  EXPECT_TRUE(par_res.ok) << "rel err " << par_res.max_rel_err;
}

TEST(GradCheckTest, StridedPaddedConv) {
  Rng rng(4);
  Sequential net;
  net.add(std::make_unique<Conv2d>(ops::Conv2dGeometry{1, 7, 7, 3, 2, 1}, 2,
                                   rng, "c"));
  net.add(std::make_unique<Flatten>());
  net.add(std::make_unique<Linear>(2 * 4 * 4, 3, rng, "fc"));
  SoftmaxCrossEntropy loss;
  const Tensor x = Tensor::normal(Shape{2, 1, 7, 7}, rng);
  const auto labels = labels_mod(2, 3);
  EXPECT_TRUE(check_parameter_gradients(net, loss, x, labels).ok);
}

TEST(GradCheckTest, BatchNormTrainMode) {
  Rng rng(5);
  Sequential net;
  net.add(std::make_unique<Conv2d>(ops::Conv2dGeometry{1, 5, 5, 3, 1, 1}, 4,
                                   rng, "c"));
  net.add(std::make_unique<BatchNorm2d>(4, "bn"));
  net.add(std::make_unique<ReLU>("r"));
  net.add(std::make_unique<Flatten>());
  net.add(std::make_unique<Linear>(4 * 5 * 5, 3, rng, "fc"));
  net.set_training(true);
  SoftmaxCrossEntropy loss;
  const Tensor x = Tensor::normal(Shape{4, 1, 5, 5}, rng);
  const auto labels = labels_mod(4, 3);
  GradCheckOptions opts;
  opts.tolerance = 5e-2;  // batch-stat coupling amplifies fp noise slightly
  const auto res = check_parameter_gradients(net, loss, x, labels, opts);
  EXPECT_TRUE(res.ok) << "rel err " << res.max_rel_err;
}

TEST(GradCheckTest, BatchNormEvalMode) {
  Rng rng(6);
  Sequential net;
  net.add(std::make_unique<BatchNorm2d>(2, "bn"));
  net.add(std::make_unique<Flatten>());
  net.add(std::make_unique<Linear>(2 * 4 * 4, 3, rng, "fc"));
  // Populate running stats, then check gradients in eval mode (constants).
  net.set_training(true);
  (void)net.forward(Tensor::normal(Shape{4, 2, 4, 4}, rng));
  net.set_training(false);
  SoftmaxCrossEntropy loss;
  const Tensor x = Tensor::normal(Shape{2, 2, 4, 4}, rng);
  const auto labels = labels_mod(2, 3);
  EXPECT_TRUE(check_input_gradient(net, loss, x, labels).ok);
}

TEST(GradCheckTest, ResidualBlockIdentityShortcut) {
  Rng rng(7);
  auto main = std::make_unique<Sequential>("main");
  main->add(std::make_unique<Conv2d>(ops::Conv2dGeometry{2, 4, 4, 3, 1, 1}, 2,
                                     rng, "c1"));
  main->add(std::make_unique<ReLU>("r1"));
  main->add(std::make_unique<Conv2d>(ops::Conv2dGeometry{2, 4, 4, 3, 1, 1}, 2,
                                     rng, "c2"));
  Sequential net;
  net.add(std::make_unique<Residual>(std::move(main), nullptr,
                                     std::make_unique<ReLU>("post"), "res"));
  net.add(std::make_unique<Flatten>());
  net.add(std::make_unique<Linear>(2 * 4 * 4, 3, rng, "fc"));
  SoftmaxCrossEntropy loss;
  const Tensor x = Tensor::normal(Shape{2, 2, 4, 4}, rng);
  const auto labels = labels_mod(2, 3);
  EXPECT_TRUE(check_input_gradient(net, loss, x, labels).ok);
  EXPECT_TRUE(check_parameter_gradients(net, loss, x, labels).ok);
}

TEST(GradCheckTest, ResidualBlockProjectionShortcut) {
  Rng rng(8);
  auto main = std::make_unique<Sequential>("main");
  main->add(std::make_unique<Conv2d>(ops::Conv2dGeometry{2, 4, 4, 3, 2, 1}, 4,
                                     rng, "c1"));
  auto shortcut = std::make_unique<Sequential>("sc");
  shortcut->add(std::make_unique<Conv2d>(
      ops::Conv2dGeometry{2, 4, 4, 1, 2, 0}, 4, rng, "proj"));
  Sequential net;
  net.add(std::make_unique<Residual>(std::move(main), std::move(shortcut),
                                     std::make_unique<ReLU>("post"), "res"));
  net.add(std::make_unique<Flatten>());
  net.add(std::make_unique<Linear>(4 * 2 * 2, 3, rng, "fc"));
  SoftmaxCrossEntropy loss;
  const Tensor x = Tensor::normal(Shape{2, 2, 4, 4}, rng);
  const auto labels = labels_mod(2, 3);
  EXPECT_TRUE(check_parameter_gradients(net, loss, x, labels).ok);
}

TEST(GradCheckTest, MseLossGradient) {
  Rng rng(9);
  Sequential net;
  net.add(std::make_unique<Linear>(4, 3, rng, "fc"));
  MseOneHot loss;
  const Tensor x = Tensor::normal(Shape{3, 4}, rng);
  const auto labels = labels_mod(3, 3);
  EXPECT_TRUE(check_input_gradient(net, loss, x, labels).ok);
  EXPECT_TRUE(check_parameter_gradients(net, loss, x, labels).ok);
}

TEST(GradCheckTest, AvgPoolPath) {
  Rng rng(11);
  Sequential net;
  net.add(std::make_unique<Conv2d>(ops::Conv2dGeometry{1, 6, 6, 3, 1, 1}, 3,
                                   rng, "c"));
  net.add(std::make_unique<AvgPool2d>(2, 2, "ap"));
  net.add(std::make_unique<Flatten>());
  net.add(std::make_unique<Linear>(3 * 3 * 3, 3, rng, "fc"));
  SoftmaxCrossEntropy loss;
  const Tensor x = Tensor::normal(Shape{2, 1, 6, 6}, rng);
  const auto labels = labels_mod(2, 3);
  EXPECT_TRUE(check_input_gradient(net, loss, x, labels).ok);
  EXPECT_TRUE(check_parameter_gradients(net, loss, x, labels).ok);
}

TEST(GradCheckTest, GlobalAvgPoolPath) {
  Rng rng(10);
  Sequential net;
  net.add(std::make_unique<Conv2d>(ops::Conv2dGeometry{1, 6, 6, 3, 1, 1}, 4,
                                   rng, "c"));
  net.add(std::make_unique<ReLU>("r"));
  net.add(std::make_unique<GlobalAvgPool>());
  net.add(std::make_unique<Linear>(4, 3, rng, "fc"));
  SoftmaxCrossEntropy loss;
  const Tensor x = Tensor::normal(Shape{2, 1, 6, 6}, rng);
  const auto labels = labels_mod(2, 3);
  EXPECT_TRUE(check_parameter_gradients(net, loss, x, labels).ok);
}

}  // namespace
}  // namespace hpnn::nn
