#include "nn/losses.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/error.hpp"

namespace hpnn::nn {
namespace {

TEST(CrossEntropyTest, UniformLogitsGiveLogC) {
  SoftmaxCrossEntropy ce;
  Tensor scores(Shape{2, 10});  // all-zero logits -> uniform
  const float loss = ce.forward(scores, {0, 5});
  EXPECT_NEAR(loss, std::log(10.0f), 1e-5);
}

TEST(CrossEntropyTest, ConfidentCorrectIsLowLoss) {
  SoftmaxCrossEntropy ce;
  Tensor scores(Shape{1, 3}, std::vector<float>{10.0f, -10.0f, -10.0f});
  EXPECT_LT(ce.forward(scores, {0}), 1e-4f);
  EXPECT_GT(ce.forward(scores, {1}), 10.0f);
}

TEST(CrossEntropyTest, GradientIsProbsMinusOneHot) {
  SoftmaxCrossEntropy ce;
  Tensor scores(Shape{1, 2}, std::vector<float>{0.0f, 0.0f});
  (void)ce.forward(scores, {0});
  const Tensor g = ce.backward();
  EXPECT_NEAR(g.at(0, 0), (0.5f - 1.0f) / 1.0f, 1e-6);
  EXPECT_NEAR(g.at(0, 1), 0.5f, 1e-6);
}

TEST(CrossEntropyTest, GradientScaledByBatch) {
  SoftmaxCrossEntropy ce;
  Tensor scores(Shape{4, 2});
  (void)ce.forward(scores, {0, 0, 0, 0});
  const Tensor g = ce.backward();
  EXPECT_NEAR(g.at(0, 0), -0.5f / 4.0f, 1e-6);
}

TEST(CrossEntropyTest, LabelValidation) {
  SoftmaxCrossEntropy ce;
  Tensor scores(Shape{1, 3});
  EXPECT_THROW(ce.forward(scores, {3}), InvariantError);
  EXPECT_THROW(ce.forward(scores, {-1}), InvariantError);
  EXPECT_THROW(ce.forward(scores, {0, 1}), InvariantError);
}

TEST(CrossEntropyTest, BackwardBeforeForwardThrows) {
  SoftmaxCrossEntropy ce;
  EXPECT_THROW(ce.backward(), InvariantError);
}

TEST(MseTest, PerfectOneHotIsZero) {
  MseOneHot mse;
  Tensor scores(Shape{1, 3}, std::vector<float>{0.0f, 1.0f, 0.0f});
  EXPECT_FLOAT_EQ(mse.forward(scores, {1}), 0.0f);
}

TEST(MseTest, KnownValue) {
  MseOneHot mse;
  Tensor scores(Shape{1, 2}, std::vector<float>{0.5f, 0.5f});
  // E = 1/2 [(1-0.5)^2 + (0-0.5)^2] = 0.25
  EXPECT_FLOAT_EQ(mse.forward(scores, {0}), 0.25f);
}

TEST(MseTest, GradientIsOutMinusTarget) {
  MseOneHot mse;
  Tensor scores(Shape{1, 2}, std::vector<float>{0.3f, 0.8f});
  (void)mse.forward(scores, {1});
  const Tensor g = mse.backward();
  EXPECT_NEAR(g.at(0, 0), 0.3f, 1e-6);
  EXPECT_NEAR(g.at(0, 1), 0.8f - 1.0f, 1e-6);
}

TEST(AccuracyTest, CountsCorrectArgmax) {
  Tensor scores(Shape{3, 2}, std::vector<float>{1, 0,  //
                                                0, 1,  //
                                                1, 0});
  EXPECT_DOUBLE_EQ(accuracy(scores, {0, 1, 1}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(accuracy(scores, {0, 1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(accuracy(scores, {1, 0, 1}), 0.0);
}

}  // namespace
}  // namespace hpnn::nn
