#include "nn/optim.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/error.hpp"

namespace hpnn::nn {
namespace {

Parameter make_param(float value, float grad) {
  Parameter p("w", Tensor(Shape{1}, value));
  p.grad.fill(grad);
  return p;
}

TEST(SgdTest, PlainStep) {
  Parameter p = make_param(1.0f, 0.5f);
  Sgd opt({&p}, {.lr = 0.1, .momentum = 0.0, .weight_decay = 0.0});
  opt.step();
  EXPECT_NEAR(p.value.at(0), 1.0f - 0.1f * 0.5f, 1e-6);
}

TEST(SgdTest, WeightDecayShrinksWeights) {
  Parameter p = make_param(1.0f, 0.0f);
  Sgd opt({&p}, {.lr = 0.1, .momentum = 0.0, .weight_decay = 0.5});
  opt.step();
  EXPECT_NEAR(p.value.at(0), 1.0f - 0.1f * 0.5f * 1.0f, 1e-6);
}

TEST(SgdTest, MomentumAccumulates) {
  Parameter p = make_param(0.0f, 1.0f);
  Sgd opt({&p}, {.lr = 1.0, .momentum = 0.5, .weight_decay = 0.0});
  opt.step();  // v=1, w=-1
  EXPECT_NEAR(p.value.at(0), -1.0f, 1e-6);
  opt.step();  // v=1.5, w=-2.5
  EXPECT_NEAR(p.value.at(0), -2.5f, 1e-6);
}

TEST(SgdTest, ConvergesOnQuadratic) {
  // minimize f(w) = (w-3)^2 by hand-computed gradients
  Parameter p = make_param(0.0f, 0.0f);
  Sgd opt({&p}, {.lr = 0.1, .momentum = 0.9, .weight_decay = 0.0});
  for (int i = 0; i < 200; ++i) {
    p.grad.fill(2.0f * (p.value.at(0) - 3.0f));
    opt.step();
  }
  EXPECT_NEAR(p.value.at(0), 3.0f, 1e-3);
}

TEST(SgdTest, InvalidLrThrows) {
  Parameter p = make_param(0.0f, 0.0f);
  EXPECT_THROW(Sgd({&p}, {.lr = 0.0}), InvariantError);
  EXPECT_THROW(Sgd({&p}, {.lr = -1.0}), InvariantError);
}

TEST(SgdTest, SetLrTakesEffect) {
  Parameter p = make_param(1.0f, 1.0f);
  Sgd opt({&p}, {.lr = 0.1});
  opt.set_lr(0.2);
  EXPECT_DOUBLE_EQ(opt.lr(), 0.2);
  opt.step();
  EXPECT_NEAR(p.value.at(0), 0.8f, 1e-6);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Parameter p = make_param(0.0f, 0.0f);
  Adam opt({&p}, {.lr = 0.1});
  for (int i = 0; i < 500; ++i) {
    p.grad.fill(2.0f * (p.value.at(0) - 3.0f));
    opt.step();
  }
  EXPECT_NEAR(p.value.at(0), 3.0f, 1e-2);
}

TEST(AdamTest, FirstStepIsLrSized) {
  Parameter p = make_param(0.0f, 10.0f);
  Adam opt({&p}, {.lr = 0.01});
  opt.step();
  // bias-corrected Adam's first step is ~lr regardless of gradient scale
  EXPECT_NEAR(p.value.at(0), -0.01f, 1e-4);
}

TEST(StepLrTest, DecaysOnSchedule) {
  Parameter p = make_param(0.0f, 0.0f);
  Sgd opt({&p}, {.lr = 1.0});
  StepLr sched(opt, /*step_size=*/2, /*gamma=*/0.1);
  sched.epoch_end();
  EXPECT_DOUBLE_EQ(opt.lr(), 1.0);
  sched.epoch_end();
  EXPECT_NEAR(opt.lr(), 0.1, 1e-12);
  sched.epoch_end();
  EXPECT_NEAR(opt.lr(), 0.1, 1e-12);
  sched.epoch_end();
  EXPECT_NEAR(opt.lr(), 0.01, 1e-12);
}

TEST(CosineLrTest, AnnealsToMinimum) {
  Parameter p = make_param(0.0f, 0.0f);
  Sgd opt({&p}, {.lr = 1.0});
  CosineLr sched(opt, /*total_epochs=*/10, /*min_lr=*/0.1);
  double prev = opt.lr();
  for (int i = 0; i < 10; ++i) {
    sched.epoch_end();
    EXPECT_LE(opt.lr(), prev + 1e-12);  // monotone decay
    prev = opt.lr();
  }
  EXPECT_NEAR(opt.lr(), 0.1, 1e-9);
  sched.epoch_end();  // past the horizon: clamps at min
  EXPECT_NEAR(opt.lr(), 0.1, 1e-9);
}

TEST(CosineLrTest, HalfwayIsMidpoint) {
  Parameter p = make_param(0.0f, 0.0f);
  Sgd opt({&p}, {.lr = 2.0});
  CosineLr sched(opt, 2, 0.0);
  sched.epoch_end();
  EXPECT_NEAR(opt.lr(), 1.0, 1e-9);  // cos(pi/2) midpoint
}

TEST(CosineLrTest, Validation) {
  Parameter p = make_param(0.0f, 0.0f);
  Sgd opt({&p}, {.lr = 1.0});
  EXPECT_THROW(CosineLr(opt, 0), InvariantError);
  EXPECT_THROW(CosineLr(opt, 5, 2.0), InvariantError);
}

TEST(ClipGradNormTest, ScalesDownLargeGradients) {
  Parameter p("w", Tensor(Shape{2}, std::vector<float>{0.0f, 0.0f}));
  p.grad = Tensor(Shape{2}, std::vector<float>{3.0f, 4.0f});  // norm 5
  const double norm = clip_grad_norm({&p}, 1.0);
  EXPECT_DOUBLE_EQ(norm, 5.0);
  EXPECT_NEAR(p.grad.at(0), 0.6f, 1e-6);
  EXPECT_NEAR(p.grad.at(1), 0.8f, 1e-6);
}

TEST(ClipGradNormTest, LeavesSmallGradientsAlone) {
  Parameter p("w", Tensor(Shape{1}, 0.0f));
  p.grad.fill(0.5f);
  (void)clip_grad_norm({&p}, 1.0);
  EXPECT_FLOAT_EQ(p.grad.at(0), 0.5f);
}

TEST(ClipGradNormTest, GlobalNormAcrossParams) {
  Parameter a("a", Tensor(Shape{1}, 0.0f));
  Parameter b("b", Tensor(Shape{1}, 0.0f));
  a.grad.fill(3.0f);
  b.grad.fill(4.0f);
  const double norm = clip_grad_norm({&a, &b}, 5.0);
  EXPECT_DOUBLE_EQ(norm, 5.0);
  EXPECT_FLOAT_EQ(a.grad.at(0), 3.0f);  // exactly at the bound: untouched
  EXPECT_THROW(clip_grad_norm({&a}, 0.0), InvariantError);
}

TEST(ParameterVersionTest, OptimizerStepsBumpVersion) {
  // Packed-weight caches key on Parameter::version(); every in-place
  // weight update must advance it.
  Parameter p = make_param(1.0f, 0.5f);
  Parameter q = make_param(1.0f, 0.5f);
  EXPECT_EQ(p.version(), 0u);
  Sgd sgd({&p}, {.lr = 0.1, .momentum = 0.9});
  sgd.step();
  EXPECT_EQ(p.version(), 1u);
  sgd.step();
  EXPECT_EQ(p.version(), 2u);
  Adam adam({&q}, {.lr = 0.1});
  adam.step();
  EXPECT_EQ(q.version(), 1u);
}

TEST(ParameterVersionTest, AssignValueBumpsVersion) {
  Parameter p = make_param(1.0f, 0.0f);
  p.assign_value(Tensor(Shape{1}, 2.0f));
  EXPECT_EQ(p.version(), 1u);
  EXPECT_FLOAT_EQ(p.value.at(0), 2.0f);
  p.mark_value_updated();
  EXPECT_EQ(p.version(), 2u);
}

TEST(StepLrTest, ZeroStepDisables) {
  Parameter p = make_param(0.0f, 0.0f);
  Sgd opt({&p}, {.lr = 1.0});
  StepLr sched(opt, 0, 0.1);
  for (int i = 0; i < 5; ++i) {
    sched.epoch_end();
  }
  EXPECT_DOUBLE_EQ(opt.lr(), 1.0);
}

}  // namespace
}  // namespace hpnn::nn
