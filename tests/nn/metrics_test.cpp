#include "nn/metrics.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "nn/layers.hpp"
#include "nn/trainer.hpp"

namespace hpnn::nn {
namespace {

TEST(ConfusionMatrixTest, CountsObservations) {
  ConfusionMatrix cm(3);
  cm.add(0, 0);
  cm.add(0, 1);
  cm.add(2, 2);
  EXPECT_EQ(cm.count(0, 0), 1);
  EXPECT_EQ(cm.count(0, 1), 1);
  EXPECT_EQ(cm.count(2, 2), 1);
  EXPECT_EQ(cm.count(1, 1), 0);
  EXPECT_EQ(cm.total(), 3);
}

TEST(ConfusionMatrixTest, AccuracyIsTraceOverTotal) {
  ConfusionMatrix cm(2);
  cm.add(0, 0);
  cm.add(0, 0);
  cm.add(1, 0);
  cm.add(1, 1);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 3.0 / 4.0);
}

TEST(ConfusionMatrixTest, PrecisionRecall) {
  ConfusionMatrix cm(2);
  // class 0: 2 true, 1 recalled; predictions of 0: 1 correct out of 2.
  cm.add(0, 0);
  cm.add(0, 1);
  cm.add(1, 0);
  cm.add(1, 1);
  EXPECT_DOUBLE_EQ(cm.recall(0), 0.5);
  EXPECT_DOUBLE_EQ(cm.precision(0), 0.5);
  EXPECT_DOUBLE_EQ(cm.balanced_accuracy(), 0.5);
}

TEST(ConfusionMatrixTest, EmptyClassHandling) {
  ConfusionMatrix cm(3);
  cm.add(0, 0);
  EXPECT_DOUBLE_EQ(cm.recall(1), 0.0);
  EXPECT_DOUBLE_EQ(cm.precision(2), 0.0);
  EXPECT_DOUBLE_EQ(cm.balanced_accuracy(), 1.0);  // only class 0 non-empty
}

TEST(ConfusionMatrixTest, AddBatchUsesArgmax) {
  ConfusionMatrix cm(2);
  Tensor scores(Shape{2, 2}, std::vector<float>{0.9f, 0.1f,   //
                                                0.2f, 0.8f});
  cm.add_batch(scores, {0, 0});
  EXPECT_EQ(cm.count(0, 0), 1);
  EXPECT_EQ(cm.count(0, 1), 1);
}

TEST(ConfusionMatrixTest, Validation) {
  EXPECT_THROW(ConfusionMatrix(0), InvariantError);
  ConfusionMatrix cm(2);
  EXPECT_THROW(cm.add(2, 0), InvariantError);
  EXPECT_THROW(cm.count(0, 5), InvariantError);
}

TEST(ConfusionMatrixTest, ToStringContainsCounts) {
  ConfusionMatrix cm(2);
  cm.add(1, 1);
  const std::string s = cm.to_string();
  EXPECT_NE(s.find("true\\pred"), std::string::npos);
}

TEST(TopkTest, Top1EqualsAccuracy) {
  Tensor scores(Shape{3, 4}, std::vector<float>{1, 2, 3, 0,   //
                                                5, 1, 0, 0,   //
                                                0, 0, 0, 9});
  EXPECT_DOUBLE_EQ(topk_accuracy(scores, {2, 0, 3}, 1), 1.0);
  EXPECT_DOUBLE_EQ(topk_accuracy(scores, {0, 0, 0}, 1), 1.0 / 3.0);
}

TEST(TopkTest, LargerKIsMoreForgiving) {
  Tensor scores(Shape{1, 4}, std::vector<float>{4, 3, 2, 1});
  EXPECT_DOUBLE_EQ(topk_accuracy(scores, {2}, 1), 0.0);
  EXPECT_DOUBLE_EQ(topk_accuracy(scores, {2}, 3), 1.0);
  EXPECT_DOUBLE_EQ(topk_accuracy(scores, {2}, 4), 1.0);
}

TEST(TopkTest, Validation) {
  Tensor scores(Shape{1, 3});
  EXPECT_THROW(topk_accuracy(scores, {0}, 0), InvariantError);
  EXPECT_THROW(topk_accuracy(scores, {0}, 4), InvariantError);
}

TEST(EvaluateConfusionTest, MatchesEvaluateAccuracy) {
  Rng rng(1);
  Sequential net;
  net.add(std::make_unique<Linear>(4, 3, rng, "fc"));
  const Tensor x = Tensor::normal(Shape{10, 4}, rng);
  std::vector<std::int64_t> labels(10);
  for (std::size_t i = 0; i < 10; ++i) {
    labels[i] = static_cast<std::int64_t>(i % 3);
  }
  const auto cm = evaluate_confusion(net, x, labels, 3, 4);
  EXPECT_EQ(cm.total(), 10);
  EXPECT_NEAR(cm.accuracy(), evaluate_accuracy(net, x, labels), 1e-12);
}

}  // namespace
}  // namespace hpnn::nn
