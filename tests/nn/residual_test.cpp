#include "nn/residual.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "nn/layers.hpp"

namespace hpnn::nn {
namespace {

/// A module that multiplies by a constant (for analytic residual checks).
class Scale : public Module {
 public:
  explicit Scale(float s) : s_(s) {}
  Tensor forward(const Tensor& x) override { return x * s_; }
  Tensor backward(const Tensor& g) override { return g * s_; }
  std::string name() const override { return "scale"; }

 private:
  float s_;
};

TEST(ResidualTest, IdentityShortcutAddsInput) {
  auto r = Residual(std::make_unique<Scale>(2.0f), nullptr, nullptr);
  Tensor x(Shape{1, 4}, 3.0f);
  const Tensor y = r.forward(x);
  EXPECT_FLOAT_EQ(y.at(0), 9.0f);  // 2x + x
}

TEST(ResidualTest, IdentityShortcutGradient) {
  auto r = Residual(std::make_unique<Scale>(2.0f), nullptr, nullptr);
  Tensor x(Shape{1, 4}, 1.0f);
  (void)r.forward(x);
  const Tensor gx = r.backward(Tensor(Shape{1, 4}, 1.0f));
  EXPECT_FLOAT_EQ(gx.at(0), 3.0f);  // d(2x+x)/dx
}

TEST(ResidualTest, ProjectionShortcut) {
  auto r = Residual(std::make_unique<Scale>(2.0f),
                    std::make_unique<Scale>(0.5f), nullptr);
  Tensor x(Shape{1, 2}, 4.0f);
  const Tensor y = r.forward(x);
  EXPECT_FLOAT_EQ(y.at(0), 10.0f);  // 2x + 0.5x
  (void)y;
  const Tensor gx = r.backward(Tensor(Shape{1, 2}, 1.0f));
  EXPECT_FLOAT_EQ(gx.at(0), 2.5f);
}

TEST(ResidualTest, PostActivationApplied) {
  auto r = Residual(std::make_unique<Scale>(-3.0f), nullptr,
                    std::make_unique<ReLU>("post"));
  Tensor x(Shape{1, 2}, 1.0f);
  const Tensor y = r.forward(x);
  EXPECT_FLOAT_EQ(y.at(0), 0.0f);  // relu(-3x + x) = relu(-2) = 0
}

TEST(ResidualTest, ShapeMismatchThrows) {
  Rng rng(1);
  auto main = std::make_unique<Linear>(4, 3, rng, "fc");
  auto r = Residual(std::move(main), nullptr, nullptr);
  Tensor x(Shape{1, 4});
  EXPECT_THROW(r.forward(x), InvariantError);  // [1,3] vs [1,4]
}

TEST(ResidualTest, NullMainThrows) {
  EXPECT_THROW(Residual(nullptr, nullptr, nullptr), InvariantError);
}

TEST(ResidualTest, CollectsAllParameters) {
  Rng rng(2);
  auto main = std::make_unique<Linear>(4, 4, rng, "main_fc");
  auto shortcut = std::make_unique<Linear>(4, 4, rng, "sc_fc");
  Residual r(std::move(main), std::move(shortcut), nullptr);
  std::vector<Parameter*> params;
  r.collect_parameters(params);
  EXPECT_EQ(params.size(), 4u);
}

TEST(ResidualTest, StructuralAccessors) {
  auto r = Residual(std::make_unique<Scale>(1.0f),
                    std::make_unique<Scale>(1.0f),
                    std::make_unique<ReLU>("post"));
  EXPECT_NE(r.shortcut(), nullptr);
  EXPECT_NE(r.post(), nullptr);
  auto r2 = Residual(std::make_unique<Scale>(1.0f), nullptr, nullptr);
  EXPECT_EQ(r2.shortcut(), nullptr);
  EXPECT_EQ(r2.post(), nullptr);
}

}  // namespace
}  // namespace hpnn::nn
