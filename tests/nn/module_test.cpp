#include "nn/module.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "nn/layers.hpp"

namespace hpnn::nn {
namespace {

TEST(SequentialTest, ChainsForward) {
  Rng rng(1);
  Sequential seq("test");
  seq.add(std::make_unique<Linear>(4, 3, rng, "fc1"));
  seq.add(std::make_unique<ReLU>("r1"));
  seq.add(std::make_unique<Linear>(3, 2, rng, "fc2"));
  const Tensor x = Tensor::normal(Shape{5, 4}, rng);
  const Tensor y = seq.forward(x);
  EXPECT_EQ(y.shape(), Shape({5, 2}));
}

TEST(SequentialTest, CollectsParametersInOrder) {
  Rng rng(2);
  Sequential seq;
  seq.add(std::make_unique<Linear>(4, 3, rng, "fc1"));
  seq.add(std::make_unique<Linear>(3, 2, rng, "fc2"));
  const auto params = parameters_of(seq);
  ASSERT_EQ(params.size(), 4u);  // 2x (weight + bias)
  EXPECT_EQ(params[0]->name, "fc1.weight");
  EXPECT_EQ(params[1]->name, "fc1.bias");
  EXPECT_EQ(params[2]->name, "fc2.weight");
  EXPECT_EQ(params[3]->name, "fc2.bias");
}

TEST(SequentialTest, ParameterCount) {
  Rng rng(3);
  Sequential seq;
  seq.add(std::make_unique<Linear>(4, 3, rng, "fc1", /*bias=*/true));
  EXPECT_EQ(parameter_count(seq), 4 * 3 + 3);
}

TEST(SequentialTest, ZeroGradsClearsAll) {
  Rng rng(4);
  Sequential seq;
  seq.add(std::make_unique<Linear>(2, 2, rng, "fc"));
  auto params = parameters_of(seq);
  params[0]->grad.fill(5.0f);
  zero_grads(seq);
  EXPECT_EQ(params[0]->grad.max(), 0.0f);
}

TEST(SequentialTest, AddNullThrows) {
  Sequential seq;
  EXPECT_THROW(seq.add(nullptr), InvariantError);
}

TEST(SequentialTest, AtBoundsChecked) {
  Rng rng(5);
  Sequential seq;
  seq.add(std::make_unique<ReLU>());
  EXPECT_NO_THROW(seq.at(0));
  EXPECT_THROW(seq.at(1), InvariantError);
}

TEST(SequentialTest, TrainingFlagPropagates) {
  Rng rng(6);
  Sequential seq;
  auto& drop = seq.add(std::make_unique<Dropout>(0.5, 1, "d"));
  seq.set_training(false);
  EXPECT_FALSE(drop.training());
  seq.set_training(true);
  EXPECT_TRUE(drop.training());
}

TEST(SequentialTest, BackwardReversesOrder) {
  Rng rng(7);
  Sequential seq;
  seq.add(std::make_unique<Linear>(3, 3, rng, "fc1", false));
  seq.add(std::make_unique<Linear>(3, 3, rng, "fc2", false));
  const Tensor x = Tensor::normal(Shape{2, 3}, rng);
  const Tensor y = seq.forward(x);
  const Tensor gx = seq.backward(Tensor(y.shape(), 1.0f));
  EXPECT_EQ(gx.shape(), x.shape());
}

TEST(ParameterTest, GradMatchesValueShape) {
  Parameter p("w", Tensor(Shape{3, 4}, 1.0f));
  EXPECT_EQ(p.grad.shape(), p.value.shape());
  EXPECT_EQ(p.grad.max(), 0.0f);
}

}  // namespace
}  // namespace hpnn::nn
