#include "nn/summary.hpp"

#include <gtest/gtest.h>

#include "models/zoo.hpp"
#include "nn/layers.hpp"

namespace hpnn::nn {
namespace {

TEST(SummaryTest, FlatSequential) {
  Rng rng(1);
  Sequential net("mlp");
  net.add(std::make_unique<Linear>(4, 3, rng, "fc1"));
  net.add(std::make_unique<ReLU>("r"));
  net.add(std::make_unique<Linear>(3, 2, rng, "fc2"));
  const auto layers = summarize(net);
  ASSERT_EQ(layers.size(), 4u);  // container + 3 leaves
  EXPECT_EQ(layers[0].kind, "Sequential");
  EXPECT_EQ(layers[1].kind, "Linear");
  EXPECT_EQ(layers[1].parameters, 4 * 3 + 3);
  EXPECT_EQ(layers[2].kind, "ReLU");
  EXPECT_EQ(layers[2].parameters, 0);
  EXPECT_EQ(layers[1].depth, 1);
}

TEST(SummaryTest, TableTotalsMatchParameterCount) {
  models::ModelConfig cfg;
  cfg.in_channels = 1;
  cfg.image_size = 16;
  cfg.init_seed = 2;
  auto net = models::build(models::Architecture::kCnn1, cfg);
  const std::string table = summary_table(*net);
  EXPECT_NE(table.find("Conv2d"), std::string::npos);
  EXPECT_NE(table.find("total parameters: " +
                       std::to_string(parameter_count(*net))),
            std::string::npos);
}

TEST(SummaryTest, ResNetNestingDepth) {
  models::ModelConfig cfg;
  cfg.in_channels = 3;
  cfg.image_size = 16;
  cfg.init_seed = 2;
  cfg.width_mult = 0.125;
  auto net = models::build(models::Architecture::kResNet18, cfg);
  const auto layers = summarize(*net);
  bool saw_residual = false;
  bool saw_nested = false;
  for (const auto& layer : layers) {
    saw_residual |= (layer.kind == "Residual");
    saw_nested |= (layer.depth >= 3);  // root -> residual -> main -> conv
  }
  EXPECT_TRUE(saw_residual);
  EXPECT_TRUE(saw_nested);
}

}  // namespace
}  // namespace hpnn::nn
