#include "nn/trainer.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "nn/layers.hpp"
#include "tensor/ops.hpp"

namespace hpnn::nn {
namespace {

/// A linearly separable 2-class toy problem.
std::pair<Tensor, std::vector<std::int64_t>> toy_data(std::int64_t n,
                                                      Rng& rng) {
  Tensor x(Shape{n, 2});
  std::vector<std::int64_t> labels(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t cls = i % 2;
    const float cx = cls == 0 ? -1.0f : 1.0f;
    x.at(i, 0) = cx + static_cast<float>(rng.normal(0.0, 0.3));
    x.at(i, 1) = -cx + static_cast<float>(rng.normal(0.0, 0.3));
    labels[static_cast<std::size_t>(i)] = cls;
  }
  return {std::move(x), std::move(labels)};
}

TEST(GatherBatchTest, CopiesSelectedRows) {
  Tensor images = Tensor::arange(Shape{4, 2});
  const std::vector<std::int64_t> labels{10, 11, 12, 13};
  const std::vector<std::size_t> order{3, 1, 0, 2};
  auto [batch, blabels] = gather_batch(images, labels, order, 1, 2);
  EXPECT_EQ(batch.shape(), Shape({2, 2}));
  EXPECT_EQ(batch.at(0, 0), 2.0f);  // sample 1
  EXPECT_EQ(batch.at(1, 0), 0.0f);  // sample 0
  EXPECT_EQ(blabels, (std::vector<std::int64_t>{11, 10}));
}

TEST(GatherBatchTest, RangeOverflowThrows) {
  Tensor images(Shape{2, 2});
  const std::vector<std::int64_t> labels{0, 1};
  const std::vector<std::size_t> order{0, 1};
  EXPECT_THROW(gather_batch(images, labels, order, 1, 2), InvariantError);
}

TEST(FitTest, LossDecreasesOnSeparableData) {
  Rng rng(1);
  auto [x, labels] = toy_data(128, rng);
  Sequential net;
  net.add(std::make_unique<Linear>(2, 8, rng, "fc1"));
  net.add(std::make_unique<ReLU>("r"));
  net.add(std::make_unique<Linear>(8, 2, rng, "fc2"));
  SoftmaxCrossEntropy loss;
  Sgd opt(parameters_of(net), {.lr = 0.1, .momentum = 0.9});
  TrainConfig cfg;
  cfg.epochs = 10;
  cfg.batch_size = 16;
  const auto result = fit(net, loss, opt, x, labels, cfg);
  ASSERT_EQ(result.epoch_loss.size(), 10u);
  EXPECT_LT(result.final_loss, result.epoch_loss.front() * 0.3);
  EXPECT_GT(evaluate_accuracy(net, x, labels), 0.95);
}

TEST(FitTest, DeterministicGivenSeeds) {
  auto run = [] {
    Rng rng(7);
    auto [x, labels] = toy_data(64, rng);
    Sequential net;
    net.add(std::make_unique<Linear>(2, 4, rng, "fc1"));
    net.add(std::make_unique<ReLU>("r"));
    net.add(std::make_unique<Linear>(4, 2, rng, "fc2"));
    SoftmaxCrossEntropy loss;
    Sgd opt(parameters_of(net), {.lr = 0.05});
    TrainConfig cfg;
    cfg.epochs = 3;
    cfg.batch_size = 8;
    cfg.shuffle_seed = 99;
    return fit(net, loss, opt, x, labels, cfg).final_loss;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(FitTest, EpochCallbackInvoked) {
  Rng rng(2);
  auto [x, labels] = toy_data(32, rng);
  Sequential net;
  net.add(std::make_unique<Linear>(2, 2, rng, "fc"));
  SoftmaxCrossEntropy loss;
  Sgd opt(parameters_of(net), {.lr = 0.01});
  TrainConfig cfg;
  cfg.epochs = 4;
  int calls = 0;
  cfg.on_epoch = [&](std::int64_t epoch, double) {
    EXPECT_EQ(epoch, calls);
    ++calls;
  };
  (void)fit(net, loss, opt, x, labels, cfg);
  EXPECT_EQ(calls, 4);
}

TEST(FitTest, MismatchedLabelsThrow) {
  Rng rng(3);
  Tensor x(Shape{4, 2});
  Sequential net;
  net.add(std::make_unique<Linear>(2, 2, rng, "fc"));
  SoftmaxCrossEntropy loss;
  Sgd opt(parameters_of(net), {.lr = 0.01});
  EXPECT_THROW(fit(net, loss, opt, x, {0, 1}, TrainConfig{}), InvariantError);
}

TEST(FitTest, LastPartialBatchHandled) {
  Rng rng(4);
  auto [x, labels] = toy_data(10, rng);  // batch 4 -> batches of 4,4,2
  Sequential net;
  net.add(std::make_unique<Linear>(2, 2, rng, "fc"));
  SoftmaxCrossEntropy loss;
  Sgd opt(parameters_of(net), {.lr = 0.01});
  TrainConfig cfg;
  cfg.epochs = 1;
  cfg.batch_size = 4;
  EXPECT_NO_THROW(fit(net, loss, opt, x, labels, cfg));
}

TEST(FitTest, RestoresPriorTrainingMode) {
  Rng rng(8);
  auto [x, labels] = toy_data(16, rng);
  Sequential net;
  net.add(std::make_unique<Linear>(2, 2, rng, "fc"));
  SoftmaxCrossEntropy loss;
  Sgd opt(parameters_of(net), {.lr = 0.01});
  TrainConfig cfg;
  cfg.epochs = 1;
  cfg.batch_size = 8;

  net.set_training(false);  // caller is in inference mode
  (void)fit(net, loss, opt, x, labels, cfg);
  EXPECT_FALSE(net.training()) << "fit leaked training mode";

  net.set_training(true);
  (void)fit(net, loss, opt, x, labels, cfg);
  EXPECT_TRUE(net.training());
}

TEST(EvaluateAccuracyTest, NonPositiveBatchSizeThrows) {
  Rng rng(9);
  auto [x, labels] = toy_data(8, rng);
  Sequential net;
  net.add(std::make_unique<Linear>(2, 2, rng, "fc"));
  EXPECT_THROW(evaluate_accuracy(net, x, labels, 0), InvariantError);
  EXPECT_THROW(evaluate_accuracy(net, x, labels, -4), InvariantError);
}

TEST(EvaluateAccuracyTest, ExactCountOnOddBatches) {
  Rng rng(10);
  auto [x, labels] = toy_data(7, rng);
  Sequential net;
  net.add(std::make_unique<Linear>(2, 8, rng, "fc1"));
  net.add(std::make_unique<ReLU>("r"));
  net.add(std::make_unique<Linear>(8, 2, rng, "fc2"));

  // Ground truth: argmax over one full-batch forward in eval mode.
  net.set_training(false);
  const auto predicted = ops::argmax_rows(net.forward(x));
  std::int64_t correct = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    correct += (predicted[i] == labels[i]);
  }
  const double expected = static_cast<double>(correct) / 7.0;

  // Odd batch sizes used to re-round each batch's accuracy ratio; the
  // result must now match the exact count for every batching.
  for (const std::int64_t bs : {1, 2, 3, 5, 7, 64}) {
    EXPECT_DOUBLE_EQ(evaluate_accuracy(net, x, labels, bs), expected)
        << "batch_size " << bs;
  }
}

TEST(EvaluateAccuracyTest, RestoresTrainingFlag) {
  Rng rng(5);
  auto [x, labels] = toy_data(8, rng);
  Sequential net;
  net.add(std::make_unique<Linear>(2, 2, rng, "fc"));
  net.set_training(true);
  (void)evaluate_accuracy(net, x, labels);
  EXPECT_TRUE(net.training());
  net.set_training(false);
  (void)evaluate_accuracy(net, x, labels);
  EXPECT_FALSE(net.training());
}

TEST(EvaluateAccuracyTest, EmptyDatasetIsZero) {
  Rng rng(6);
  Sequential net;
  net.add(std::make_unique<Linear>(2, 2, rng, "fc"));
  Tensor x(Shape{0, 2});
  EXPECT_DOUBLE_EQ(evaluate_accuracy(net, x, {}), 0.0);
}

}  // namespace
}  // namespace hpnn::nn
