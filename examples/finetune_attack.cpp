// Playing the attacker (Sec. IV-B): you stole the obfuscated weights and a
// slice of the training data — how far does fine-tuning get you?
//
//   build/examples/finetune_attack
#include <cstdio>
#include <sstream>

#include "attack/finetune.hpp"
#include "data/synthetic.hpp"
#include "hpnn/owner.hpp"

using namespace hpnn;

int main() {
  std::printf("HPNN fine-tuning attack demo (CNN1, FashionSynth)\n\n");

  data::SyntheticConfig dc;
  dc.train_per_class = 150;
  dc.test_per_class = 30;
  dc.image_size = 20;
  const auto split =
      data::make_dataset(data::SyntheticFamily::kFashionSynth, dc);

  // Owner trains and publishes.
  Rng key_rng(31337);
  const obf::HpnnKey key = obf::HpnnKey::random(key_rng);
  obf::Scheduler scheduler(0xFACE);
  models::ModelConfig mc;
  mc.in_channels = 1;
  mc.image_size = 20;
  mc.init_seed = 5;
  obf::LockedModel model(models::Architecture::kCnn1, mc, key, scheduler);
  obf::OwnerTrainOptions opt;
  opt.epochs = 8;
  opt.sgd = {0.01, 0.9, 5e-4};
  const auto report =
      obf::train_locked_model(model, split.train, split.test, opt);
  std::stringstream zoo;
  obf::publish_model(zoo, model);
  const obf::PublishedModel artifact = obf::read_published_model(zoo);
  std::printf("owner accuracy (with key): %.2f%%\n", report.test_accuracy * 100);
  std::printf("stolen model, no key     : %.2f%%\n\n",
              obf::evaluate_without_key(model, key, scheduler, split.test) *
                  100);

  // Attacker: thief dataset sweep, both initializations.
  attack::FineTuneOptions fopt;
  fopt.epochs = 15;
  fopt.sgd = opt.sgd;  // attacker reuses the owner's hyperparameters
  std::printf("%-8s | %-16s | %-16s\n", "alpha", "HPNN fine-tune",
              "random fine-tune");
  for (const double alpha : {0.01, 0.05, 0.10}) {
    Rng thief_rng(2);
    const data::Dataset thief =
        data::thief_subset(split.train, alpha, thief_rng);
    const auto hpnn_ft =
        attack::finetune_attack(artifact, thief, split.test,
                                attack::InitStrategy::kStolenWeights, fopt);
    const auto rand_ft =
        attack::finetune_attack(artifact, thief, split.test,
                                attack::InitStrategy::kRandomSmall, fopt);
    std::printf("%-8.0f%% | %15.2f%% | %15.2f%%\n", alpha * 100,
                hpnn_ft.final_accuracy * 100, rand_ft.final_accuracy * 100);
  }
  std::printf(
      "\nTakeaways: fine-tuning stays below the owner's accuracy, and the "
      "stolen weights give no edge over random init — the obfuscated model "
      "leaks nothing useful.\n");
  return 0;
}
