// Key management & device attestation: how a model owner runs a fleet.
//
// One master HPNN key; per-model subkeys and schedules derived with SHA-256
// (hpnn/keychain); license records for the hardware vendor; and a
// challenge/response attestation proving a device holds the right key —
// without the key ever leaving sealed storage.
//
//   build/examples/license_flow
#include <cstdio>
#include <sstream>

#include "data/synthetic.hpp"
#include "hpnn/attestation.hpp"
#include "hpnn/keychain.hpp"
#include "hpnn/model_io.hpp"
#include "hpnn/owner.hpp"
#include "hw/device.hpp"
#include "tensor/ops.hpp"

using namespace hpnn;

int main() {
  // ---- owner: one master secret for the whole product line -------------
  Rng master_rng(0xC0DE);
  const obf::HpnnKey master = obf::HpnnKey::random(master_rng);
  std::printf("master key fingerprint: %s\n",
              obf::key_fingerprint(master).c_str());

  const std::string model_id = "fashion-cnn1-v1";
  const obf::HpnnKey model_key = obf::derive_model_key(master, model_id);
  const std::uint64_t schedule_seed =
      obf::derive_schedule_seed(master, model_id);
  const obf::License license = obf::License::issue(master, model_id);
  std::printf("license for '%s': model-key fingerprint %s...\n\n",
              license.model_id.c_str(),
              license.model_key_fingerprint.substr(0, 16).c_str());

  // ---- owner: train + publish the locked model -------------------------
  data::SyntheticConfig dc;
  dc.train_per_class = 120;
  dc.test_per_class = 25;
  dc.image_size = 20;
  const auto split =
      data::make_dataset(data::SyntheticFamily::kFashionSynth, dc);
  models::ModelConfig mc;
  mc.in_channels = 1;
  mc.image_size = 20;
  mc.init_seed = 5;
  obf::Scheduler scheduler(schedule_seed);
  obf::LockedModel model(models::Architecture::kCnn1, mc, model_key,
                         scheduler);
  obf::OwnerTrainOptions opt;
  opt.epochs = 8;
  opt.sgd = {0.01, 0.9, 5e-4};
  const auto report =
      obf::train_locked_model(model, split.train, split.test, opt);
  std::printf("owner accuracy (with model key): %.2f%%\n\n",
              report.test_accuracy * 100);

  std::stringstream zoo;
  obf::publish_model(zoo, model);
  const obf::PublishedModel artifact = obf::read_published_model(zoo);

  // ---- owner: generate an attestation challenge ------------------------
  Rng probe_rng(99);
  const auto challenge = obf::make_challenge(model, 64, probe_rng);
  std::printf("attestation challenge: %lld probes, threshold %.0f%%\n",
              static_cast<long long>(challenge.probes.dim(0)),
              challenge.min_agreement * 100);

  // ---- vendor: provision devices ----------------------------------------
  // Device A gets the correct model key (derived from the licensed master);
  // device B is a counterfeit with a different key.
  hw::TrustedDevice genuine(model_key, schedule_seed);
  Rng fake_rng(666);
  hw::TrustedDevice counterfeit(obf::HpnnKey::random(fake_rng),
                                schedule_seed);
  genuine.load_model(artifact);
  counterfeit.load_model(artifact);

  // License bookkeeping: the vendor can verify the provisioned key against
  // the license fingerprint without learning the master key.
  std::printf("license matches genuine key:     %s\n",
              license.matches_model_key(model_key) ? "yes" : "no");

  // ---- attestation -------------------------------------------------------
  const auto genuine_result = obf::check_response(
      challenge, genuine.classify(challenge.probes));
  const auto fake_result = obf::check_response(
      challenge, counterfeit.classify(challenge.probes));
  std::printf("genuine device attestation:      %s (agreement %.1f%%)\n",
              genuine_result.passed ? "PASS" : "FAIL",
              genuine_result.agreement * 100);
  std::printf("counterfeit device attestation:  %s (agreement %.1f%%)\n",
              fake_result.passed ? "PASS" : "FAIL",
              fake_result.agreement * 100);

  // A second model under the same master gets a different subkey — leaking
  // one model's key does not compromise the rest of the fleet.
  const obf::HpnnKey other =
      obf::derive_model_key(master, "digits-cnn3-v2");
  std::printf("\nsubkey diversification: %zu/256 bits differ between "
              "model keys\n",
              model_key.hamming_distance(other));
  return 0;
}
