// The full MLaaS flow of Fig. 1: the owner trains and publishes an
// obfuscated model artifact to a "model zoo" (a file); an authorized
// end-user and an attacker both download the same file — only the user
// with the trusted hardware gets the model's real functionality.
//
//   build/examples/model_zoo_flow [artifact_path]
#include <cstdio>
#include <string>

#include "core/error.hpp"
#include "data/synthetic.hpp"
#include "hpnn/model_io.hpp"
#include "hpnn/owner.hpp"
#include "hpnn/zoo_store.hpp"
#include "hw/device.hpp"
#include "nn/trainer.hpp"

using namespace hpnn;

int main(int argc, char** argv) {
  const std::string zoo_dir = argc > 1 ? argv[1] : "/tmp/hpnn_model_zoo";

  // ---------------- owner side -----------------------------------------
  std::printf("== OWNER: key-dependent training on DigitSynth (SVHN-like)\n");
  data::SyntheticConfig dc;
  dc.train_per_class = 120;
  dc.test_per_class = 25;
  dc.image_size = 20;
  const auto split =
      data::make_dataset(data::SyntheticFamily::kDigitSynth, dc);

  Rng key_rng(4242);
  const obf::HpnnKey key = obf::HpnnKey::random(key_rng);
  const std::uint64_t schedule_seed = 0x5EC0;
  obf::Scheduler scheduler(schedule_seed);

  models::ModelConfig mc;
  mc.in_channels = 3;
  mc.image_size = 20;
  mc.init_seed = 11;
  mc.width_mult = 0.5;
  obf::LockedModel model(models::Architecture::kCnn3, mc, key, scheduler);

  obf::OwnerTrainOptions opt;
  opt.epochs = 8;
  opt.sgd = {0.01, 0.9, 5e-4};
  const auto report =
      obf::train_locked_model(model, split.train, split.test, opt);
  std::printf("owner test accuracy (with key): %.2f%%\n\n",
              report.test_accuracy * 100);

  // Publish to the zoo store: the artifact contains topology + weights,
  // never the key; the store index records its SHA-256.
  obf::ModelZoo zoo(zoo_dir);
  zoo.publish("svhn-cnn3-v1", model);
  std::printf("== ZOO: published to %s\n", zoo_dir.c_str());
  for (const auto& entry : zoo.list()) {
    std::printf("   %s -> %s (sha256 %s...)\n", entry.name.c_str(),
                entry.file.c_str(), entry.digest_hex.substr(0, 12).c_str());
  }
  std::printf("\n");

  // ---------------- authorized end-user --------------------------------
  std::printf("== USER: fetches artifact, runs it on trusted hardware\n");
  const obf::PublishedModel artifact = zoo.fetch("svhn-cnn3-v1");
  hw::TrustedDevice device(key, schedule_seed);  // key sealed on-chip
  device.load_model(artifact);

  std::int64_t correct = 0;
  const std::int64_t n = split.test.size();
  const std::int64_t sample = split.test.images.numel() / n;
  for (std::int64_t at = 0; at < n; at += 50) {
    const std::int64_t count = std::min<std::int64_t>(50, n - at);
    Tensor batch(Shape{count, 3, 20, 20},
                 std::vector<float>(
                     split.test.images.data() + at * sample,
                     split.test.images.data() + (at + count) * sample));
    const auto pred = device.classify(batch);
    for (std::int64_t i = 0; i < count; ++i) {
      correct += (pred[static_cast<std::size_t>(i)] ==
                  split.test.labels[static_cast<std::size_t>(at + i)]);
    }
  }
  std::printf("trusted-device accuracy (int8 datapath): %.2f%%\n",
              100.0 * static_cast<double>(correct) / static_cast<double>(n));
  std::printf("device key export attempt: ");
  try {
    (void)device.key_store().export_key();
    std::printf("EXPORTED (bug!)\n");
  } catch (const KeyError& e) {
    std::printf("rejected (%s)\n", e.what());
  }

  // ---------------- attacker -------------------------------------------
  std::printf("\n== ATTACKER: loads the same artifact into the baseline "
              "architecture (no key)\n");
  auto stolen = obf::instantiate_baseline(artifact);
  const double attacker_acc = nn::evaluate_accuracy(
      *stolen, split.test.images, split.test.labels);
  std::printf("attacker accuracy: %.2f%% (chance = 10%%)\n",
              attacker_acc * 100);
  std::printf("\nIP protection: %.2f-point accuracy drop for unauthorized "
              "use.\n",
              (report.test_accuracy - attacker_acc) * 100);
  return 0;
}
