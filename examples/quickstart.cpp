// Quickstart: train a key-locked CNN with the HPNN framework and see why a
// stolen copy is useless without the key.
//
//   build/examples/quickstart
//
// Steps: synthesize a small Fashion-MNIST-like dataset, train CNN1 with
// key-dependent backpropagation, then evaluate (a) with the key, (b) with
// no key (the attacker's view), (c) with a random wrong key.
#include <cstdio>

#include "data/synthetic.hpp"
#include "hpnn/owner.hpp"
#include "nn/metrics.hpp"

using namespace hpnn;

int main() {
  std::printf("HPNN quickstart — key-locked CNN1 on FashionSynth\n\n");

  // 1. Data: a 10-class grayscale dataset standing in for Fashion-MNIST.
  data::SyntheticConfig dc;
  dc.train_per_class = 150;
  dc.test_per_class = 30;
  dc.image_size = 20;
  const auto split =
      data::make_dataset(data::SyntheticFamily::kFashionSynth, dc);
  std::printf("dataset: %lld train / %lld test samples, %lldx%lld\n",
              static_cast<long long>(split.train.size()),
              static_cast<long long>(split.test.size()),
              static_cast<long long>(split.train.height()),
              static_cast<long long>(split.train.width()));

  // 2. The owner's secrets: a 256-bit HPNN key and the private scheduling
  //    seed that maps neurons to the device's 256 accumulator units.
  Rng key_rng(2020);
  const obf::HpnnKey key = obf::HpnnKey::random(key_rng);
  const std::uint64_t schedule_seed = 0xDAC2020;
  obf::Scheduler scheduler(schedule_seed);
  std::printf("HPNN key: %s...\n", key.to_hex().substr(0, 16).c_str());

  // 3. Key-dependent training (Sec. III-C): the lock factors ride the
  //    chain rule, so ordinary SGD optimizes the obfuscated weight space.
  models::ModelConfig mc;
  mc.in_channels = 1;
  mc.image_size = 20;
  mc.init_seed = 7;
  obf::LockedModel model(models::Architecture::kCnn1, mc, key, scheduler);
  std::printf("locked neurons: %lld\n\n",
              static_cast<long long>(model.locked_neuron_count()));

  obf::OwnerTrainOptions opt;
  opt.epochs = 8;
  opt.sgd = {0.01, 0.9, 5e-4};
  const auto report =
      obf::train_locked_model(model, split.train, split.test, opt);

  // 4. The punchline.
  const double with_key = report.test_accuracy;
  const double no_key =
      obf::evaluate_without_key(model, key, scheduler, split.test);
  Rng wrong_rng(999);
  const double wrong_key = obf::evaluate_with_key(
      model, obf::HpnnKey::random(wrong_rng), key, scheduler, split.test);

  std::printf("accuracy with the correct key : %6.2f%%\n", with_key * 100);
  std::printf("accuracy with no key (stolen) : %6.2f%%  (chance = 10%%)\n",
              no_key * 100);
  std::printf("accuracy with a random key    : %6.2f%%\n", wrong_key * 100);
  std::printf("\naccuracy drop from obfuscation: %.2f points\n",
              (with_key - no_key) * 100);

  // Bonus: per-class view of the locked (with-key) model.
  model.apply_key(key, scheduler);
  const auto cm = nn::evaluate_confusion(model.network(), split.test.images,
                                         split.test.labels, 10);
  std::printf("\nper-class recall with key:");
  for (std::int64_t c = 0; c < 10; ++c) {
    std::printf(" %d:%.0f%%", static_cast<int>(c), cm.recall(c) * 100);
  }
  std::printf("\nbalanced accuracy: %.2f%%\n", cm.balanced_accuracy() * 100);
  return 0;
}
