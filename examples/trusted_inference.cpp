// A close look at the trusted hardware device (Sec. III-D): the TPU-like
// integer datapath, the key-dependent accumulators, the scheduling that
// compresses thousands of neurons onto 256 key bits, and the gate/cycle
// overhead of the locking hardware.
//
//   build/examples/trusted_inference
#include <cstdio>
#include <sstream>

#include "data/synthetic.hpp"
#include "hpnn/owner.hpp"
#include "hw/device.hpp"
#include "hw/overhead.hpp"

using namespace hpnn;

int main() {
  std::printf("HPNN trusted-device walkthrough\n\n");

  // Train + publish a small locked model.
  data::SyntheticConfig dc;
  dc.train_per_class = 100;
  dc.test_per_class = 20;
  dc.image_size = 16;
  const auto split =
      data::make_dataset(data::SyntheticFamily::kFashionSynth, dc);
  Rng key_rng(7);
  const obf::HpnnKey key = obf::HpnnKey::random(key_rng);
  const std::uint64_t schedule_seed = 77;
  obf::Scheduler scheduler(schedule_seed);
  models::ModelConfig mc;
  mc.in_channels = 1;
  mc.image_size = 16;
  mc.init_seed = 3;
  obf::LockedModel model(models::Architecture::kCnn1, mc, key, scheduler);
  obf::OwnerTrainOptions opt;
  opt.epochs = 6;
  opt.sgd = {0.01, 0.9, 5e-4};
  const auto report =
      obf::train_locked_model(model, split.train, split.test, opt);

  std::stringstream zoo;
  obf::publish_model(zoo, model);
  const obf::PublishedModel artifact = obf::read_published_model(zoo);

  // Scheduling: thousands of neurons share the 256 key bits.
  std::printf("locked neurons: %lld, key bits: %zu\n",
              static_cast<long long>(model.locked_neuron_count()),
              obf::HpnnKey::kBits);
  const auto units = scheduler.assign_units(0, 8);
  std::printf("first 8 neurons of layer 0 -> accumulator units:");
  for (const auto u : units) {
    std::printf(" %u", u);
  }
  std::printf("  (private schedule)\n\n");

  // The device: key provisioned then sealed; inference on int8 MMU.
  hw::TrustedDevice device(key, schedule_seed);
  device.load_model(artifact);
  const std::int64_t n = std::min<std::int64_t>(split.test.size(), 100);
  Tensor batch(Shape{n, 1, 16, 16},
               std::vector<float>(split.test.images.data(),
                                  split.test.images.data() + n * 256));
  std::int64_t correct = 0;
  const auto pred = device.classify(batch);
  for (std::int64_t i = 0; i < n; ++i) {
    correct += (pred[static_cast<std::size_t>(i)] ==
                split.test.labels[static_cast<std::size_t>(i)]);
  }

  std::printf("float model (with key) accuracy : %.2f%%\n",
              report.test_accuracy * 100);
  std::printf("device int8 accuracy (first %lld): %.2f%%\n",
              static_cast<long long>(n),
              100.0 * static_cast<double>(correct) / static_cast<double>(n));

  const auto& stats = device.mmu_stats();
  std::printf("\nMMU stats for that batch:\n");
  std::printf("  GEMM calls          : %llu\n",
              static_cast<unsigned long long>(stats.gemm_calls));
  std::printf("  MAC operations      : %llu\n",
              static_cast<unsigned long long>(stats.mac_ops));
  std::printf("  modeled cycles      : %llu (utilization %.1f%%)\n",
              static_cast<unsigned long long>(stats.cycles),
              stats.utilization() * 100);
  std::printf("  key-locked outputs  : %llu\n",
              static_cast<unsigned long long>(stats.locked_outputs));

  const auto overhead = hw::mmu_overhead(256);
  std::printf("\nlocking hardware cost: %lld XOR gates (%.3f%% of a 1e6-gate "
              "MMU), %lld extra cycles\n",
              static_cast<long long>(overhead.xor_gates_added),
              overhead.overhead_vs_reference(1000000) * 100,
              static_cast<long long>(overhead.cycle_overhead));
  return 0;
}
